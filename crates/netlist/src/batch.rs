//! Bit-parallel batch simulation: one compiled netlist evaluated over
//! many independent stimulus vectors at once.
//!
//! The scalar evaluator gives every net a run of u64 words in one arena.
//! The batch engine widens each of those words into a *lane group* of `W`
//! consecutive words (lane-major: scalar word offset `o`, lane `l` lives
//! at `o·W + l`), so a single instruction dispatch evaluates `W`
//! independent vectors — up to 64·W stimulus bits per kernel for one-bit
//! nets. Kernels are matched once per instruction and run tight per-lane
//! loops (`crate::exec::exec_lanes`): the logic ops vectorize trivially,
//! and the arithmetic/compare/select/Lookup loops are simple enough for
//! the compiler to auto-vectorize.
//!
//! Scheduling stays activity-driven with a batch-aware dirty rule: an
//! instruction's consumers are queued when *any* lane changed, so all
//! lanes advance through the same worklists and the per-instruction
//! dispatch cost is amortized across the whole group. Sequential
//! semantics are preserved per lane — task firings sample pre-edge
//! values, a lane's `$finish` edge discards that lane's pending commits
//! and freezes its registers, and the remaining lanes keep running.
//!
//! Composability with the level-parallel pool: a [`BatchHarness`] can
//! attach the same worker pool the scalar engine uses, in which case
//! dense passes split wide levels across threads with each chunk
//! processing all of its lanes.

use crate::eval::{build_profile_report, NlProfileReport, TaskFire};
use crate::exec::{
    exec_lanes, slot_bits_lane, top_word_mask, write_slot_lane, NlProfileState, Program,
    ProgramStats, Slot,
};
use crate::ir::*;
use crate::level::LevelError;
use crate::par::{EvalPool, ParCtl};
use cascade_bits::Bits;
use std::sync::Arc;

/// Hard cap on the lane count (arena size scales linearly with it).
pub const MAX_BATCH_LANES: u32 = 4096;

/// Lane-major mutable state over a [`Program`] — the batched counterpart
/// of the scalar `State`.
#[derive(Debug, Clone)]
struct BatchState {
    lanes: usize,
    /// `prog.arena_words * lanes` words, lane-major.
    arena: Vec<u64>,
    /// `prog.mem_arena_words * lanes` words, lane-major.
    mem_arena: Vec<u64>,
    /// Per-level dirty worklists (an instruction is dirty if any lane of
    /// any operand changed).
    queues: Vec<Vec<u32>>,
    queued: Vec<bool>,
    /// Register-sample buffer for two-phase commits, lane-major.
    scratch: Vec<u64>,
    profile: Option<Box<NlProfileState>>,
    par: Option<ParCtl>,
}

impl BatchState {
    fn new(nl: &Netlist, prog: &Program, lanes: usize) -> BatchState {
        let mut st = BatchState {
            lanes,
            arena: vec![0u64; prog.arena_words as usize * lanes],
            mem_arena: vec![0u64; prog.mem_arena_words as usize * lanes],
            queues: (0..prog.num_levels).map(|_| Vec::new()).collect(),
            queued: vec![false; prog.instrs.len()],
            scratch: vec![
                0u64;
                prog.domains
                    .iter()
                    .map(|d| d.scratch_words)
                    .max()
                    .unwrap_or(0) as usize
                    * lanes
            ],
            profile: None,
            par: None,
        };
        st.init(nl, prog);
        st
    }

    /// (Re)writes constants and register initial values into every lane
    /// and queues a full settle.
    fn init(&mut self, nl: &Netlist, prog: &Program) {
        self.arena.fill(0);
        self.mem_arena.fill(0);
        for q in &mut self.queues {
            q.clear();
        }
        self.queued.fill(false);
        for (i, net) in nl.nets.iter().enumerate() {
            match &net.def {
                Def::Const(c) => {
                    self.write_slot_all(prog.slots[i], &c.resize(net.width));
                }
                Def::Reg(r) => {
                    self.write_slot_all(
                        prog.slots[i],
                        &nl.regs[r.0 as usize].init.resize(net.width),
                    );
                }
                _ => {}
            }
        }
        self.mark_all(prog);
        self.settle_auto(prog);
    }

    fn mark_all(&mut self, prog: &Program) {
        for i in 0..prog.instrs.len() as u32 {
            if !self.queued[i as usize] {
                self.queued[i as usize] = true;
                self.queues[prog.level[i as usize] as usize].push(i);
            }
        }
    }

    #[inline]
    fn mark(&mut self, prog: &Program, net: u32) {
        for &i in prog.fanout[net as usize].iter() {
            if !self.queued[i as usize] {
                self.queued[i as usize] = true;
                self.queues[prog.level[i as usize] as usize].push(i);
            }
        }
    }

    fn mark_mem(&mut self, prog: &Program, mem: u32) {
        for &i in prog.mem_fanout[mem as usize].iter() {
            if !self.queued[i as usize] {
                self.queued[i as usize] = true;
                self.queues[prog.level[i as usize] as usize].push(i);
            }
        }
    }

    /// Writes the same value into every lane of a slot.
    fn write_slot_all(&mut self, slot: Slot, value: &Bits) -> bool {
        let src = value.words();
        let mut changed = false;
        for k in 0..slot.words as usize {
            let w = src.get(k).copied().unwrap_or(0);
            let base = (slot.off as usize + k) * self.lanes;
            for d in &mut self.arena[base..base + self.lanes] {
                changed |= *d != w;
                *d = w;
            }
        }
        changed
    }

    fn write_lane(&mut self, slot: Slot, lane: usize, value: &Bits) -> bool {
        debug_assert!(lane < self.lanes);
        // SAFETY: slots are in-bounds by construction and the arena holds
        // `lanes` words per program word.
        unsafe { write_slot_lane(self.arena.as_mut_ptr(), self.lanes, lane, slot, value) }
    }

    fn read_lane(&self, slot: Slot, lane: usize) -> Bits {
        debug_assert!(lane < self.lanes);
        // SAFETY: as `write_lane`.
        unsafe { slot_bits_lane(self.arena.as_ptr(), self.lanes, lane, slot) }
    }

    /// Whether a slot holds any set bit in the given lane.
    fn bool_lane(&self, slot: Slot, lane: usize) -> bool {
        (0..slot.words as usize)
            .any(|k| self.arena[(slot.off as usize + k) * self.lanes + lane] != 0)
    }

    /// Sparse settle: drains the worklists level by level; a changed
    /// output (in any lane) queues its consumers.
    fn settle(&mut self, prog: &Program) {
        for lvl in 0..self.queues.len() {
            if self.queues[lvl].is_empty() {
                continue;
            }
            let mut q = std::mem::take(&mut self.queues[lvl]);
            if let Some(p) = &mut self.profile {
                p.level_execs[lvl] += q.len() as u64;
            }
            for &i in &q {
                self.queued[i as usize] = false;
                // SAFETY: arenas are sized `lanes` words per program word;
                // `i` comes from the worklist.
                let changed = unsafe {
                    exec_lanes(
                        prog,
                        self.arena.as_mut_ptr(),
                        self.mem_arena.as_ptr(),
                        self.lanes,
                        i,
                    )
                };
                if let Some(p) = &mut self.profile {
                    p.instr_execs[i as usize] += 1;
                    p.instr_tracked[i as usize] += 1;
                    p.instr_changes[i as usize] += changed as u64;
                }
                if changed > 0 {
                    self.mark(prog, prog.instrs[i as usize].out);
                }
            }
            q.clear();
            debug_assert!(self.queues[lvl].is_empty());
            self.queues[lvl] = q;
        }
        if let Some(p) = &mut self.profile {
            p.settles += 1;
        }
    }

    /// Dense settle: recomputes every instruction in topological order,
    /// splitting wide levels across the pool when one is attached.
    fn settle_dense(&mut self, prog: &Program) {
        if let Some(p) = &mut self.profile {
            for (i, lvl) in prog.level.iter().enumerate() {
                p.instr_execs[i] += 1;
                p.level_execs[*lvl as usize] += 1;
            }
            p.settles += 1;
        }
        for q in &mut self.queues {
            for &i in q.iter() {
                self.queued[i as usize] = false;
            }
            q.clear();
        }
        let use_pool = match &mut self.par {
            Some(ctl) => {
                ctl.tick(prog, self.profile.as_deref());
                ctl.any_par
            }
            None => false,
        };
        if use_pool {
            let ctl = self.par.as_ref().expect("checked above");
            if let Some(p) = &mut self.profile {
                for (l, &(start, end)) in prog.level_ranges.iter().enumerate() {
                    if ctl.par_level[l] {
                        p.level_par_execs[l] += (end - start) as u64;
                    }
                }
            }
            ctl.pool.run(
                prog,
                &mut self.arena,
                &self.mem_arena,
                self.lanes,
                &ctl.par_level,
            );
        } else if self.profile.is_some() {
            for i in 0..prog.instrs.len() as u32 {
                // SAFETY: as in `settle`.
                let changed = unsafe {
                    exec_lanes(
                        prog,
                        self.arena.as_mut_ptr(),
                        self.mem_arena.as_ptr(),
                        self.lanes,
                        i,
                    )
                };
                if let Some(p) = &mut self.profile {
                    p.instr_tracked[i as usize] += 1;
                    p.instr_changes[i as usize] += changed as u64;
                }
            }
        } else {
            for i in 0..prog.instrs.len() as u32 {
                // SAFETY: as in `settle`.
                unsafe {
                    exec_lanes(
                        prog,
                        self.arena.as_mut_ptr(),
                        self.mem_arena.as_ptr(),
                        self.lanes,
                        i,
                    )
                };
            }
        }
    }

    fn wave_is_dense(&self, prog: &Program) -> bool {
        let seeded: usize = self.queues.iter().map(Vec::len).sum();
        seeded * 4 >= prog.instrs.len() && !prog.instrs.is_empty()
    }

    fn settle_auto(&mut self, prog: &Program) {
        if self.wave_is_dense(prog) {
            self.settle_dense(prog);
        } else {
            self.settle(prog);
        }
    }

    fn write_mem_lane(
        &mut self,
        prog: &Program,
        mem: u32,
        addr: u64,
        value: &Bits,
        lane: usize,
        mark: bool,
    ) {
        let m = prog.mems[mem as usize];
        if addr >= m.count {
            return;
        }
        let v = value.resize(m.width);
        let base = (m.off + addr as u32 * m.words_per) as usize;
        let src = v.words();
        let mut changed = false;
        for k in 0..m.words_per as usize {
            let w = src.get(k).copied().unwrap_or(0);
            let d = &mut self.mem_arena[(base + k) * self.lanes + lane];
            if mark {
                changed |= *d != w;
            }
            *d = w;
        }
        if changed {
            self.mark_mem(prog, mem);
        }
    }

    /// Commits one domain's registers and memory writes per lane, skipping
    /// the lanes flagged in `skip` (finished lanes: a `$finish` edge
    /// discards its commits and the lane's registers stay frozen). With
    /// `mark` off, no change detection or consumer queueing is performed —
    /// only valid when the next settle is a dense pass.
    fn commit_domain(&mut self, prog: &Program, domain: usize, skip: &[bool], mark: bool) {
        let Some(plan) = prog.domains.get(domain) else {
            return;
        };
        let lanes = self.lanes;
        // Phase 1: sample every register's d words (all lanes — skipping
        // is applied at writeback) and the enabled write ports per lane.
        for rc in plan.small.iter().chain(&plan.regs) {
            let src = rc.d.off as usize * lanes;
            let dst = rc.scratch as usize * lanes;
            let words = rc.d.words as usize * lanes;
            self.scratch[dst..dst + words].copy_from_slice(&self.arena[src..src + words]);
        }
        let mut writes: Vec<(u32, u64, Bits, usize)> = Vec::new();
        for pc in &plan.ports {
            for (lane, &skipped) in skip.iter().enumerate().take(lanes) {
                if skipped || !self.bool_lane(pc.enable, lane) {
                    continue;
                }
                let addr = self.arena[pc.addr as usize * lanes + lane];
                let data = self.read_lane(pc.data, lane);
                writes.push((pc.mem, addr, data, lane));
            }
        }
        // Phase 2: write back.
        for rc in &plan.small {
            let topmask = top_word_mask(rc.q.width);
            let s = rc.scratch as usize * lanes;
            let q = rc.q.off as usize * lanes;
            let mut changed = false;
            for (lane, &skipped) in skip.iter().enumerate().take(lanes) {
                if skipped {
                    continue;
                }
                let v = self.scratch[s + lane] & topmask;
                let d = &mut self.arena[q + lane];
                if mark {
                    changed |= *d != v;
                }
                *d = v;
            }
            if changed {
                self.mark(prog, rc.q_net);
            }
        }
        for rc in &plan.regs {
            let q_off = rc.q.off as usize;
            let q_words = rc.q.words as usize;
            let d_words = rc.d.words as usize;
            let topmask = top_word_mask(rc.q.width);
            let mut changed = false;
            for k in 0..q_words {
                for (lane, &skipped) in skip.iter().enumerate().take(lanes) {
                    if skipped {
                        continue;
                    }
                    let mut v = if k < d_words {
                        self.scratch[(rc.scratch as usize + k) * lanes + lane]
                    } else {
                        0
                    };
                    if k == q_words - 1 {
                        v &= topmask;
                    }
                    let d = &mut self.arena[(q_off + k) * lanes + lane];
                    if mark {
                        changed |= *d != v;
                    }
                    *d = v;
                }
            }
            if changed {
                self.mark(prog, rc.q_net);
            }
        }
        for (mem, addr, data, lane) in writes {
            self.write_mem_lane(prog, mem, addr, &data, lane, mark);
        }
    }
}

/// Batched evaluator: `W` independent stimulus vectors ("lanes") through
/// one compiled netlist, one kernel dispatch per instruction for the
/// whole group.
///
/// Each lane behaves exactly like a private [`NetlistSim`]: inputs are
/// loaded per lane, task firings are attributed to their lane, and a
/// lane's `$finish` stops that lane (its registers freeze, its commits
/// stop) while the others keep running. The property suite proves every
/// lane bit-identical to a sequential single-vector run.
///
/// [`NetlistSim`]: crate::NetlistSim
///
/// # Examples
///
/// ```
/// use cascade_netlist::{synthesize, BatchHarness};
/// use cascade_sim::{elaborate, library_from_source};
/// use cascade_bits::Bits;
///
/// let lib = library_from_source(
///     "module Sq(input wire clk, input wire [7:0] a, output wire [15:0] o);\n\
///      reg [15:0] r = 0;\n\
///      always @(posedge clk) r <= a * a;\n\
///      assign o = r;\nendmodule",
/// )?;
/// let design = elaborate("Sq", &lib, &Default::default())?;
/// let netlist = synthesize(&design)?;
/// let mut batch = BatchHarness::new(netlist.into(), 4)?;
/// for lane in 0..4 {
///     batch.set_lane_by_name("a", lane, Bits::from_u64(8, 3 + lane as u64));
/// }
/// batch.run_cycles(1);
/// assert_eq!(batch.get_lane_by_name("o", 2).unwrap().to_u64(), 25);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchHarness {
    nl: Arc<Netlist>,
    prog: Arc<Program>,
    st: BatchState,
    /// `(lane, firing)` in observation order (edges ascending; within an
    /// edge, task plan order then lane order).
    tasks: Vec<(u32, TaskFire)>,
    finished: Vec<bool>,
    /// Snapshot of `finished` at the start of the current edge (a task
    /// that fires `$finish` does not suppress later tasks of that edge).
    pre_finished: Vec<bool>,
    all_finished: bool,
    /// Edges executed per lane (a lane stops counting once finished).
    lane_cycles: Vec<u64>,
    /// Harness edges executed (max over lanes).
    cycles: u64,
    threads: u32,
}

impl BatchHarness {
    /// Compiles `nl` and allocates a `lanes`-wide arena. `lanes` is
    /// clamped to `1..=MAX_BATCH_LANES`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] when the netlist has a combinational cycle.
    pub fn new(nl: Arc<Netlist>, lanes: u32) -> Result<Self, LevelError> {
        let lanes = lanes.clamp(1, MAX_BATCH_LANES) as usize;
        let prog = Arc::new(Program::compile(&nl)?);
        let st = BatchState::new(&nl, &prog, lanes);
        Ok(BatchHarness {
            nl,
            prog,
            st,
            tasks: Vec::new(),
            finished: vec![false; lanes],
            pre_finished: vec![false; lanes],
            all_finished: false,
            lane_cycles: vec![0; lanes],
            cycles: 0,
            threads: 1,
        })
    }

    /// Number of lanes (stimulus vectors per dispatch).
    pub fn lanes(&self) -> u32 {
        self.st.lanes as u32
    }

    /// The netlist being executed.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.nl
    }

    /// Size counters of the compiled program.
    pub fn program_stats(&self) -> ProgramStats {
        self.prog.stats()
    }

    /// Resets every lane to power-on state (registers at init values,
    /// memories zeroed, no pending tasks), keeping the compiled program
    /// and the attached pool. Cheaper than rebuilding the harness when
    /// grading a corpus chunk by chunk.
    pub fn reset(&mut self) {
        let (nl, prog) = (Arc::clone(&self.nl), Arc::clone(&self.prog));
        self.st.init(&nl, &prog);
        self.tasks.clear();
        self.finished.fill(false);
        self.pre_finished.fill(false);
        self.all_finished = false;
        self.lane_cycles.fill(0);
        self.cycles = 0;
    }

    /// Attaches a worker pool of `n` total threads for dense settles
    /// (`n <= 1` detaches). Composable with batching: each level chunk
    /// processes all of its lanes.
    pub fn set_eval_threads(&mut self, n: u32) {
        if n <= 1 {
            self.st.par = None;
            self.threads = 1;
        } else {
            let pool = Arc::new(EvalPool::new(n as usize));
            self.threads = pool.threads() as u32;
            self.st.par = Some(ParCtl::new(&self.prog, pool, self.st.lanes as u32));
        }
    }

    /// Switches on activity profiling (see [`NetlistSim::enable_profiling`]).
    ///
    /// [`NetlistSim::enable_profiling`]: crate::NetlistSim::enable_profiling
    pub fn enable_profiling(&mut self) {
        if self.st.profile.is_none() {
            self.st.profile = Some(Box::new(NlProfileState {
                level_execs: vec![0; self.prog.num_levels as usize],
                instr_execs: vec![0; self.prog.instrs.len()],
                level_par_execs: vec![0; self.prog.num_levels as usize],
                instr_changes: vec![0; self.prog.instrs.len()],
                instr_tracked: vec![0; self.prog.instrs.len()],
                settles: 0,
                lanes: self.st.lanes as u32,
            }));
        }
    }

    /// Aggregated activity counters, or `None` when profiling was never
    /// enabled. Includes per-kernel lane occupancy and per-level pool
    /// shares.
    pub fn profile_report(&self) -> Option<NlProfileReport> {
        let p = self.st.profile.as_deref()?;
        Some(build_profile_report(&self.nl, &self.prog, p, self.threads))
    }

    /// Sets one lane of an input net. Propagation is deferred to the next
    /// step/read, so loading all lanes costs one settle, not `W`.
    pub fn set_lane(&mut self, net: NetId, lane: u32, value: Bits) {
        let slot = self.prog.slots[net.0 as usize];
        let v = value.resize(slot.width);
        if self.st.write_lane(slot, lane as usize, &v) {
            let prog = Arc::clone(&self.prog);
            self.st.mark(&prog, net.0);
        }
    }

    /// Sets one lane of an input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no net has this name.
    pub fn set_lane_by_name(&mut self, name: &str, lane: u32, value: Bits) {
        let net = self
            .nl
            .net_by_name(name)
            .unwrap_or_else(|| panic!("unknown net `{name}`"));
        self.set_lane(net, lane, value);
    }

    /// Sets every lane of an input net to the same value.
    pub fn set_all(&mut self, net: NetId, value: Bits) {
        let slot = self.prog.slots[net.0 as usize];
        let v = value.resize(slot.width);
        if self.st.write_slot_all(slot, &v) {
            let prog = Arc::clone(&self.prog);
            self.st.mark(&prog, net.0);
        }
    }

    /// Sets every lane of an input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no net has this name.
    pub fn set_all_by_name(&mut self, name: &str, value: Bits) {
        let net = self
            .nl
            .net_by_name(name)
            .unwrap_or_else(|| panic!("unknown net `{name}`"));
        self.set_all(net, value);
    }

    /// Reads one lane of a net, settling any deferred input writes first.
    pub fn get_lane(&mut self, net: NetId, lane: u32) -> Bits {
        let prog = Arc::clone(&self.prog);
        self.st.settle_auto(&prog);
        self.st
            .read_lane(self.prog.slots[net.0 as usize], lane as usize)
    }

    /// Reads one lane of a net by name.
    pub fn get_lane_by_name(&mut self, name: &str, lane: u32) -> Option<Bits> {
        let net = self.nl.net_by_name(name)?;
        Some(self.get_lane(net, lane))
    }

    /// Whether a lane's `$finish` has fired.
    pub fn is_finished(&self, lane: u32) -> bool {
        self.finished[lane as usize]
    }

    /// Whether every lane has finished.
    pub fn all_finished(&self) -> bool {
        self.all_finished
    }

    /// Edges executed by a lane (stops at its `$finish` edge).
    pub fn lane_cycles(&self, lane: u32) -> u64 {
        self.lane_cycles[lane as usize]
    }

    /// Harness edges executed (max over lanes).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drains task firings observed so far, tagged with their lane.
    pub fn drain_tasks(&mut self) -> Vec<(u32, TaskFire)> {
        std::mem::take(&mut self.tasks)
    }

    /// Executes one edge of the given clock domain across all live lanes.
    pub fn step_clock(&mut self, clock_index: u32) {
        if self.all_finished {
            return;
        }
        let prog = Arc::clone(&self.prog);
        self.st.settle_auto(&prog);
        self.fire_tasks(&prog, clock_index);
        self.st
            .commit_domain(&prog, clock_index as usize, &self.finished, true);
        self.bump_cycles();
        self.st.settle_auto(&prog);
    }

    /// Runs up to `n` edges of clock domain 0, stopping early when every
    /// lane has finished. Returns the number of edges executed. Uses the
    /// same dense-commit streak batching as [`NetlistSim::run_cycles`].
    ///
    /// [`NetlistSim::run_cycles`]: crate::NetlistSim::run_cycles
    pub fn run_cycles(&mut self, n: u64) -> u64 {
        let prog = Arc::clone(&self.prog);
        const PROBE: u64 = 64;
        let mut dense_left = 0u64;
        let mut done = 0;
        while done < n && !self.all_finished {
            if dense_left > 0 {
                self.st.settle_dense(&prog);
            } else if self.st.wave_is_dense(&prog) {
                self.st.settle_dense(&prog);
                dense_left = PROBE;
            } else {
                self.st.settle(&prog);
            }
            self.fire_tasks(&prog, 0);
            if self.all_finished {
                self.bump_cycles();
                done += 1;
                break;
            }
            if dense_left > 1 {
                self.st.commit_domain(&prog, 0, &self.finished, false);
                dense_left -= 1;
            } else {
                self.st.commit_domain(&prog, 0, &self.finished, true);
                dense_left = 0;
            }
            self.bump_cycles();
            done += 1;
        }
        if dense_left > 0 {
            self.st.settle_dense(&prog);
        } else {
            self.st.settle_auto(&prog);
        }
        done
    }

    /// Samples one domain's task triggers per live lane at their pre-edge
    /// values. A lane finishing on this edge still observes the remaining
    /// tasks of the edge (matching the sequential engine), then stops.
    fn fire_tasks(&mut self, prog: &Program, clock_index: u32) {
        let Some(plan) = prog.domains.get(clock_index as usize) else {
            return;
        };
        let nl = Arc::clone(&self.nl);
        self.pre_finished.copy_from_slice(&self.finished);
        for &ti in &plan.tasks {
            let task = &nl.tasks[ti as usize];
            let trigger = prog.slots[task.trigger.0 as usize];
            for lane in 0..self.st.lanes {
                if self.pre_finished[lane] || !self.st.bool_lane(trigger, lane) {
                    continue;
                }
                let args: Vec<Bits> = task
                    .args
                    .iter()
                    .map(|a| self.st.read_lane(prog.slots[a.0 as usize], lane))
                    .collect();
                let text = match (&task.format, task.kind) {
                    (_, TaskKind::Finish) => String::new(),
                    (Some(f), _) => cascade_sim::format_verilog(f, &args),
                    (None, _) => args
                        .iter()
                        .zip(task.arg_signed.iter().chain(std::iter::repeat(&false)))
                        .map(|(v, &s)| {
                            if s {
                                v.to_signed_decimal_string()
                            } else {
                                v.to_decimal_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                };
                if matches!(task.kind, TaskKind::Finish | TaskKind::Fatal) {
                    self.finished[lane] = true;
                }
                self.tasks.push((
                    lane as u32,
                    TaskFire {
                        kind: task.kind,
                        text,
                    },
                ));
            }
        }
        self.all_finished = self.finished.iter().all(|&f| f);
    }

    /// Advances the edge counters: every lane live at the edge's start
    /// counts it (a finishing edge is a lane's last counted edge).
    fn bump_cycles(&mut self) {
        for (lc, &pre) in self.lane_cycles.iter_mut().zip(&self.pre_finished) {
            *lc += (!pre) as u64;
        }
        self.cycles += 1;
    }
}
