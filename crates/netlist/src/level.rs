//! Topological levelization of the combinational portion of a netlist.

use crate::ir::{Def, NetId, Netlist};
use std::error::Error;
use std::fmt;

/// Error raised when a netlist contains a combinational cycle (which could
/// not be realized on an FPGA without a latch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelError {
    /// Names of nets involved in (or near) the cycle.
    pub nets: Vec<String>,
}

impl fmt::Display for LevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational cycle through: {}", self.nets.join(" -> "))
    }
}

impl Error for LevelError {}

/// Computes a topological evaluation order over cell and memory-read nets.
///
/// Inputs, constants, and register outputs are sources; a cell can be
/// evaluated once all of its inputs are. Registers break cycles (their `d`
/// input is consumed at the clock edge, not combinationally).
///
/// # Errors
///
/// Returns [`LevelError`] if the combinational subgraph is cyclic.
pub fn levelize(nl: &Netlist) -> Result<Vec<NetId>, LevelError> {
    let n = nl.nets.len();
    // In-degree over combinational deps only.
    let mut indeg = vec![0u32; n];
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, net) in nl.nets.iter().enumerate() {
        match &net.def {
            Def::Cell(cell) => {
                for inp in &cell.inputs {
                    if is_comb(nl, *inp) {
                        indeg[i] += 1;
                        dependents[inp.0 as usize].push(i as u32);
                    }
                }
            }
            Def::MemRead { addr, .. } if is_comb(nl, *addr) => {
                indeg[i] += 1;
                dependents[addr.0 as usize].push(i as u32);
            }
            _ => {}
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<u32> = (0..n as u32)
        .filter(|&i| {
            indeg[i as usize] == 0
                && matches!(nl.nets[i as usize].def, Def::Cell(_) | Def::MemRead { .. })
        })
        .collect();
    // Also propagate readiness from source nets.
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        order.push(NetId(i));
        for &d in &dependents[i as usize] {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                queue.push(d);
            }
        }
    }
    let comb_total = nl
        .nets
        .iter()
        .filter(|net| matches!(net.def, Def::Cell(_) | Def::MemRead { .. }))
        .count();
    if order.len() != comb_total {
        let stuck: Vec<String> = nl
            .nets
            .iter()
            .enumerate()
            .filter(|(i, net)| {
                indeg[*i] > 0 && matches!(net.def, Def::Cell(_) | Def::MemRead { .. })
            })
            .take(8)
            .map(|(i, net)| net.name.clone().unwrap_or_else(|| format!("n{i}")))
            .collect();
        return Err(LevelError { nets: stuck });
    }
    Ok(order)
}

/// Per-net combinational level: sources (inputs, constants, register
/// outputs) are level 0; a cell or memory read sits one past its deepest
/// input. Returns `(levels, level_count)` where `level_count` is the number
/// of distinct non-source levels (the compiled evaluator schedules one
/// dirty-instruction worklist per level).
pub fn levels(nl: &Netlist, order: &[NetId]) -> (Vec<u32>, u32) {
    let mut level = vec![0u32; nl.nets.len()];
    let mut max = 0;
    for &net in order {
        let d = match &nl.nets[net.0 as usize].def {
            Def::Cell(cell) => {
                cell.inputs
                    .iter()
                    .map(|i| level[i.0 as usize])
                    .max()
                    .unwrap_or(0)
                    + 1
            }
            Def::MemRead { addr, .. } => level[addr.0 as usize] + 1,
            _ => 0,
        };
        level[net.0 as usize] = d;
        max = max.max(d);
    }
    (level, max)
}

/// The longest combinational path length (in cells) — the logic-depth input
/// to the timing model.
pub fn logic_depth(nl: &Netlist, order: &[NetId]) -> u32 {
    levels(nl, order).1
}

fn is_comb(nl: &Netlist, id: NetId) -> bool {
    matches!(
        nl.nets[id.0 as usize].def,
        Def::Cell(_) | Def::MemRead { .. }
    )
}
