//! The interpretive reference evaluator.
//!
//! This is the original `Bits`-walking netlist loop: every settle
//! re-evaluates all combinational nets in topological order, allocating
//! intermediate [`Bits`] values as it goes. It is kept in-tree as the
//! baseline the compiled word-arena evaluator ([`crate::NetlistSim`]) is
//! benchmarked against (`cascade-bench`'s `bench_netlist`), and as a second
//! independent oracle for the equivalence property tests.

use crate::eval::{eval_cell_refs, TaskFire};
use crate::ir::*;
use crate::level::{levelize, LevelError};
use cascade_bits::Bits;
use std::sync::Arc;

/// Executes a synthesized [`Netlist`] cycle by cycle, interpretively.
///
/// Mirrors the public surface of [`crate::NetlistSim`]; see there for the
/// per-method documentation. Prefer `NetlistSim` everywhere except when the
/// interpretive baseline itself is the object of study.
#[derive(Debug, Clone)]
pub struct ReferenceSim {
    nl: Arc<Netlist>,
    values: Vec<Bits>,
    mems: Vec<Vec<Bits>>,
    /// Topological evaluation order of cell/memread nets.
    order: Vec<NetId>,
    tasks: Vec<TaskFire>,
    finished: bool,
    /// Cycles executed per clock domain.
    cycles: u64,
}

impl ReferenceSim {
    /// Builds the evaluator, levelizing the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] when the netlist has a combinational cycle.
    pub fn new(nl: Arc<Netlist>) -> Result<Self, LevelError> {
        let order = levelize(&nl)?;
        let values = nl
            .nets
            .iter()
            .map(|n| match &n.def {
                Def::Const(c) => c.resize(n.width),
                Def::Reg(r) => nl.regs[r.0 as usize].init.resize(n.width),
                Def::Input | Def::Undriven | Def::Cell(_) | Def::MemRead { .. } => {
                    Bits::zero(n.width)
                }
            })
            .collect();
        let mems = nl
            .mems
            .iter()
            .map(|m| vec![Bits::zero(m.width); m.words as usize])
            .collect();
        let mut sim = ReferenceSim {
            nl,
            values,
            mems,
            order,
            tasks: Vec::new(),
            finished: false,
            cycles: 0,
        };
        sim.settle();
        Ok(sim)
    }

    /// The netlist being executed.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.nl
    }

    /// Whether a `$finish` task has fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total clock edges executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drains task firings observed so far.
    pub fn drain_tasks(&mut self) -> Vec<TaskFire> {
        std::mem::take(&mut self.tasks)
    }

    /// Whether any task firings are pending.
    pub fn has_tasks(&self) -> bool {
        !self.tasks.is_empty()
    }

    /// Sets an input net and repropagates combinational logic.
    pub fn set_input(&mut self, net: NetId, value: Bits) {
        let w = self.nl.width(net);
        self.values[net.0 as usize] = value.resize(w);
        self.settle();
    }

    /// Sets an input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no input net has this name.
    pub fn set_by_name(&mut self, name: &str, value: Bits) {
        let net = self
            .nl
            .net_by_name(name)
            .unwrap_or_else(|| panic!("unknown net `{name}`"));
        self.set_input(net, value);
    }

    /// Reads any net's current value.
    pub fn get(&self, net: NetId) -> Bits {
        self.values[net.0 as usize].clone()
    }

    /// Reads a net by name.
    pub fn get_by_name(&self, name: &str) -> Option<Bits> {
        self.nl.net_by_name(name).map(|n| self.get(n))
    }

    /// Reads one word of a memory.
    pub fn read_mem(&self, mem: MemId, addr: u64) -> Bits {
        self.mems[mem.0 as usize]
            .get(addr as usize)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.nl.mems[mem.0 as usize].width))
    }

    /// Writes one word of a memory directly (state restoration).
    pub fn write_mem(&mut self, mem: MemId, addr: u64, value: Bits) {
        let w = self.nl.mems[mem.0 as usize].width;
        if let Some(slot) = self.mems[mem.0 as usize].get_mut(addr as usize) {
            *slot = value.resize(w);
        }
    }

    /// Overwrites a register's current value (state restoration), without
    /// repropagating; call [`ReferenceSim::settle`] when done.
    pub fn write_reg(&mut self, reg: RegId, value: Bits) {
        let q = self.nl.regs[reg.0 as usize].q;
        let w = self.nl.width(q);
        self.values[q.0 as usize] = value.resize(w);
    }

    /// Reads a register's current value.
    pub fn read_reg(&self, reg: RegId) -> Bits {
        let q = self.nl.regs[reg.0 as usize].q;
        self.get(q)
    }

    /// Recomputes all combinational nets in topological order.
    pub fn settle(&mut self) {
        let nl = Arc::clone(&self.nl);
        for &net in &self.order {
            let value = match &nl.nets[net.0 as usize].def {
                Def::Cell(cell) => {
                    let inputs: Vec<&Bits> = cell
                        .inputs
                        .iter()
                        .map(|i| &self.values[i.0 as usize])
                        .collect();
                    eval_cell_refs(cell.op, &inputs, nl.width(net))
                }
                Def::MemRead { mem, addr } => {
                    let a = self.values[addr.0 as usize].to_u64();
                    self.read_mem(*mem, a)
                }
                _ => continue,
            };
            self.values[net.0 as usize] = value;
        }
    }

    /// Executes one edge of the given clock domain: samples task triggers
    /// and register/memory inputs, commits them, and repropagates. One call
    /// corresponds to one hardware clock cycle.
    pub fn step_clock(&mut self, clock_index: u32) {
        if self.finished {
            return;
        }
        let nl = Arc::clone(&self.nl);
        let clock = ClockId(clock_index);
        // Sample phase (pre-edge values).
        let mut reg_updates: Vec<(NetId, Bits)> = Vec::new();
        for reg in &nl.regs {
            if reg.clock == clock {
                reg_updates.push((reg.q, self.values[reg.d.0 as usize].clone()));
            }
        }
        let mut mem_updates: Vec<(MemId, u64, Bits)> = Vec::new();
        for (mi, mem) in nl.mems.iter().enumerate() {
            for port in &mem.write_ports {
                if port.clock == clock && self.values[port.enable.0 as usize].to_bool() {
                    let addr = self.values[port.addr.0 as usize].to_u64();
                    mem_updates.push((
                        MemId(mi as u32),
                        addr,
                        self.values[port.data.0 as usize].clone(),
                    ));
                }
            }
        }
        for task in &nl.tasks {
            if task.clock == clock && self.values[task.trigger.0 as usize].to_bool() {
                let args: Vec<Bits> = task
                    .args
                    .iter()
                    .map(|a| self.values[a.0 as usize].clone())
                    .collect();
                let text = match (&task.format, task.kind) {
                    (_, TaskKind::Finish) => String::new(),
                    (Some(f), _) => cascade_sim::format_verilog(f, &args),
                    (None, _) => args
                        .iter()
                        .zip(task.arg_signed.iter().chain(std::iter::repeat(&false)))
                        .map(|(v, &s)| {
                            if s {
                                v.to_signed_decimal_string()
                            } else {
                                v.to_decimal_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                };
                if matches!(task.kind, TaskKind::Finish | TaskKind::Fatal) {
                    self.finished = true;
                }
                self.tasks.push(TaskFire {
                    kind: task.kind,
                    text,
                });
            }
        }
        // Commit phase. `$finish` executes before the nonblocking-update
        // region, so an edge that finishes discards its pending commits —
        // the same boundary the event-driven simulator observes.
        if !self.finished {
            for (q, v) in reg_updates {
                let w = nl.width(q);
                self.values[q.0 as usize] = v.resize(w);
            }
            for (mem, addr, v) in mem_updates {
                self.write_mem(mem, addr, v);
            }
        }
        self.cycles += 1;
        self.settle();
    }

    /// Runs `n` cycles of clock domain 0, stopping early on `$finish`.
    /// Returns the number of cycles actually executed.
    pub fn run(&mut self, n: u64) -> u64 {
        let mut done = 0;
        for _ in 0..n {
            if self.finished {
                break;
            }
            self.step_clock(0);
            done += 1;
        }
        done
    }
}
