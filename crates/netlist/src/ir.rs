//! The word-level RTL netlist produced by synthesis.
//!
//! Every net is in SSA form: it has exactly one definition — an external
//! input, a constant, a combinational cell, a register output, or a memory
//! read port. Registers and memories carry the sequential state; system
//! tasks survive synthesis as trigger cells (the mechanism behind the
//! paper's `_tmask` transformation in Fig. 10).

use cascade_bits::Bits;
use cascade_verilog::ast::Edge;

/// Index of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Index of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub u32);

/// Index of a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemId(pub u32);

/// Index of a clock domain `(net, edge)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockId(pub u32);

/// Metadata for one net.
#[derive(Debug, Clone)]
pub struct NetInfo {
    pub width: u32,
    /// Source-level name for ports and named signals; `None` for temps.
    pub name: Option<String>,
    pub def: Def,
}

/// How a net gets its value.
#[derive(Debug, Clone, PartialEq)]
pub enum Def {
    /// Driven externally (top-level input).
    Input,
    /// Placeholder for a net whose driver has not been attached yet; a net
    /// left undriven reads as zero (two-state dangling wire). Never
    /// constant-folded.
    Undriven,
    Const(Bits),
    Cell(Cell),
    /// Output of a register.
    Reg(RegId),
    /// Asynchronous memory read port.
    MemRead {
        mem: MemId,
        addr: NetId,
    },
}

/// A combinational cell. All inputs are pre-extended to the widths the
/// operation expects, so evaluation is direct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    pub op: CellOp,
    pub inputs: Vec<NetId>,
}

/// Combinational operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellOp {
    Not,
    Neg,
    RedAnd,
    RedOr,
    RedXor,
    LogNot,
    Add,
    Sub,
    Mul,
    DivU,
    DivS,
    RemU,
    RemS,
    And,
    Or,
    Xor,
    Xnor,
    /// Dynamic shifts: `inputs[0] << inputs[1]`.
    Shl,
    Shr,
    AShr,
    Eq,
    Ne,
    LtU,
    LtS,
    LeU,
    LeS,
    /// `inputs = [sel, then, else]`.
    Mux,
    /// MSB-first concatenation.
    Concat,
    /// Static slice `[offset, offset+width)` of `inputs[0]`.
    Slice {
        offset: u32,
    },
    /// Dynamic slice: `inputs[0] >> inputs[1]`, truncated to the net width.
    DynSlice,
    /// Zero extension (or truncation) to the net width.
    ZExt,
    /// Sign extension to the net width.
    SExt,
    /// Replication of `inputs[0]`.
    Repeat {
        count: u32,
    },
}

/// A D flip-flop (bank): `q <= d` on its clock edge.
#[derive(Debug, Clone)]
pub struct Register {
    pub q: NetId,
    pub d: NetId,
    pub clock: ClockId,
    pub init: Bits,
    pub name: Option<String>,
}

/// A synchronous-write, asynchronous-read memory.
#[derive(Debug, Clone)]
pub struct Memory {
    pub width: u32,
    pub words: u64,
    pub name: Option<String>,
    pub write_ports: Vec<WritePort>,
}

/// One write port of a memory.
#[derive(Debug, Clone)]
pub struct WritePort {
    pub clock: ClockId,
    pub enable: NetId,
    pub addr: NetId,
    pub data: NetId,
}

/// The system-task kinds that survive synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    Display,
    Write,
    Finish,
    Fatal,
}

/// A synthesized system task: fires when `trigger` is high at its clock
/// edge; `args` are sampled pre-edge.
#[derive(Debug, Clone)]
pub struct TaskCell {
    pub kind: TaskKind,
    pub clock: ClockId,
    pub trigger: NetId,
    pub format: Option<String>,
    pub args: Vec<NetId>,
    /// Whether each argument was signed at the source level (affects
    /// default decimal rendering).
    pub arg_signed: Vec<bool>,
}

/// A complete synthesized netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub nets: Vec<NetInfo>,
    pub regs: Vec<Register>,
    pub mems: Vec<Memory>,
    pub tasks: Vec<TaskCell>,
    /// Clock domains: the nets whose edges drive sequential logic.
    pub clocks: Vec<(NetId, Edge)>,
    /// Top-level inputs, in declaration order.
    pub inputs: Vec<NetId>,
    /// Top-level outputs `(name, net)`.
    pub outputs: Vec<(String, NetId)>,
    pub name: String,
}

impl Netlist {
    /// The width of a net.
    pub fn width(&self, id: NetId) -> u32 {
        self.nets[id.0 as usize].width
    }

    /// Looks up a named net.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name.as_deref() == Some(name))
            .map(|i| NetId(i as u32))
    }

    /// Looks up a named memory.
    pub fn mem_by_name(&self, name: &str) -> Option<MemId> {
        self.mems
            .iter()
            .position(|m| m.name.as_deref() == Some(name))
            .map(|i| MemId(i as u32))
    }

    /// Number of combinational cells.
    pub fn cell_count(&self) -> usize {
        self.nets
            .iter()
            .filter(|n| matches!(n.def, Def::Cell(_)))
            .count()
    }

    /// Total state bits in registers and memories.
    pub fn state_bits(&self) -> u64 {
        let reg_bits: u64 = self.regs.iter().map(|r| self.width(r.q) as u64).sum();
        let mem_bits: u64 = self.mems.iter().map(|m| m.width as u64 * m.words).sum();
        reg_bits + mem_bits
    }
}
