use crate::{estimate_area, estimate_timing, synthesize, NetlistSim, SynthError, TaskKind};
use cascade_bits::Bits;
use cascade_sim::{elaborate, library_from_source, Design, Simulator};
use cascade_verilog::typecheck::ParamEnv;
use std::sync::Arc;

fn design_of(src: &str, top: &str) -> Design {
    let lib = library_from_source(src).expect("parse");
    elaborate(top, &lib, &ParamEnv::new()).expect("elaborate")
}

fn hw_of(src: &str, top: &str) -> NetlistSim {
    let design = design_of(src, top);
    let nl = synthesize(&design).expect("synthesize");
    NetlistSim::new(Arc::new(nl)).expect("levelize")
}

fn synth_err(src: &str, top: &str) -> SynthError {
    let design = design_of(src, top);
    synthesize(&design).expect_err("expected synthesis failure")
}

#[test]
fn counter_in_hardware() {
    let mut hw = hw_of(
        "module Count(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) c <= c + 1;\n\
         assign o = c;\nendmodule",
        "Count",
    );
    hw.run(10);
    assert_eq!(hw.get_by_name("o").unwrap().to_u64(), 10);
}

#[test]
fn init_values_load() {
    let hw = hw_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 42;\n\
         always @(posedge clk) c <= c;\n\
         assign o = c;\nendmodule",
        "T",
    );
    assert_eq!(hw.get_by_name("o").unwrap().to_u64(), 42);
}

#[test]
fn combinational_if_else_no_latch() {
    let mut hw = hw_of(
        "module M(input wire [3:0] a, input wire [3:0] b, input wire s, output wire [3:0] o);\n\
         reg [3:0] r;\n\
         always @(*) if (s) r = a; else r = b;\n\
         assign o = r;\nendmodule",
        "M",
    );
    hw.set_by_name("a", Bits::from_u64(4, 7));
    hw.set_by_name("b", Bits::from_u64(4, 2));
    hw.set_by_name("s", Bits::from_u64(1, 1));
    assert_eq!(hw.get_by_name("o").unwrap().to_u64(), 7);
    hw.set_by_name("s", Bits::from_u64(1, 0));
    assert_eq!(hw.get_by_name("o").unwrap().to_u64(), 2);
}

#[test]
fn combinational_case_with_default() {
    let mut hw = hw_of(
        "module Dec(input wire [1:0] s, output wire [3:0] o);\n\
         reg [3:0] r;\n\
         always @(*) case (s)\n\
           2'b00: r = 4'b0001;\n\
           2'b01: r = 4'b0010;\n\
           2'b10: r = 4'b0100;\n\
           default: r = 4'b1000;\n\
         endcase\n\
         assign o = r;\nendmodule",
        "Dec",
    );
    for (s, expect) in [(0u64, 1u64), (1, 2), (2, 4), (3, 8)] {
        hw.set_by_name("s", Bits::from_u64(2, s));
        assert_eq!(hw.get_by_name("o").unwrap().to_u64(), expect, "s={s}");
    }
}

#[test]
fn latch_detection() {
    let err = synth_err(
        "module L(input wire s, input wire [3:0] a, output wire [3:0] o);\n\
         reg [3:0] r;\n\
         always @(*) if (s) r = a;\n\
         assign o = r;\nendmodule",
        "L",
    );
    assert!(err.to_string().contains("latch"), "{err}");
}

#[test]
fn read_before_assign_latch_detection() {
    let err = synth_err(
        "module L(input wire [3:0] a, output wire [3:0] o);\n\
         reg [3:0] r;\n\
         always @(*) r = r + a;\n\
         assign o = r;\nendmodule",
        "L",
    );
    assert!(err.to_string().contains("latch"), "{err}");
}

#[test]
fn for_loop_unrolls() {
    let mut hw = hw_of(
        "module PopCount(input wire [7:0] x, output wire [3:0] n);\n\
         reg [3:0] acc; integer i;\n\
         always @(*) begin\n\
           acc = 0;\n\
           for (i = 0; i < 8; i = i + 1) acc = acc + x[i];\n\
         end\n\
         assign n = acc;\nendmodule",
        "PopCount",
    );
    hw.set_by_name("x", Bits::from_u64(8, 0b1011_0110));
    assert_eq!(hw.get_by_name("n").unwrap().to_u64(), 5);
}

#[test]
fn non_static_loop_rejected() {
    let err = synth_err(
        "module B(input wire clk, input wire [3:0] n, output wire [7:0] o);\n\
         reg [7:0] acc; integer i;\n\
         always @(posedge clk) begin\n\
           acc = 0;\n\
           for (i = 0; i < n; i = i + 1) acc = acc + 1;\n\
         end\n\
         assign o = acc;\nendmodule",
        "B",
    );
    assert!(err.to_string().contains("unroll"), "{err}");
}

#[test]
fn memory_with_write_port() {
    let mut hw = hw_of(
        "module Mem(input wire clk, input wire we, input wire [3:0] addr,\n\
                    input wire [7:0] din, output wire [7:0] dout);\n\
         reg [7:0] mem [0:15];\n\
         always @(posedge clk) if (we) mem[addr] <= din;\n\
         assign dout = mem[addr];\nendmodule",
        "Mem",
    );
    hw.set_by_name("we", Bits::from_u64(1, 1));
    hw.set_by_name("addr", Bits::from_u64(4, 3));
    hw.set_by_name("din", Bits::from_u64(8, 0x5a));
    hw.step_clock(0);
    assert_eq!(hw.get_by_name("dout").unwrap().to_u64(), 0x5a);
    hw.set_by_name("we", Bits::from_u64(1, 0));
    hw.set_by_name("din", Bits::from_u64(8, 0x11));
    hw.step_clock(0);
    assert_eq!(
        hw.get_by_name("dout").unwrap().to_u64(),
        0x5a,
        "write disabled"
    );
}

#[test]
fn display_task_fires_with_args() {
    let mut hw = hw_of(
        "module T(input wire clk);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) begin\n\
           c <= c + 1;\n\
           if (c[0]) $display(\"odd %d\", c);\n\
         end\nendmodule",
        "T",
    );
    hw.run(4);
    let fires = hw.drain_tasks();
    assert_eq!(fires.len(), 2);
    assert_eq!(fires[0].text, "odd 1");
    assert_eq!(fires[1].text, "odd 3");
    assert_eq!(fires[0].kind, TaskKind::Display);
}

#[test]
fn finish_task_stops_run() {
    let mut hw = hw_of(
        "module T(input wire clk);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) begin\n\
           c <= c + 1;\n\
           if (c == 2) $finish;\n\
         end\nendmodule",
        "T",
    );
    let done = hw.run(100);
    assert!(hw.is_finished());
    assert_eq!(done, 3);
}

#[test]
fn combinational_loop_rejected() {
    let design = design_of(
        "module Osc(output wire o);\n\
         wire a;\n\
         assign a = ~a;\n\
         assign o = a;\nendmodule",
        "Osc",
    );
    let nl = synthesize(&design).expect("synth succeeds; cycle caught at levelize");
    assert!(NetlistSim::new(Arc::new(nl)).is_err());
}

#[test]
fn multiple_drivers_rejected() {
    let err = synth_err(
        "module M(input wire a, output wire o);\n\
         assign o = a;\n\
         assign o = ~a;\nendmodule",
        "M",
    );
    assert!(err.to_string().contains("multiple drivers"), "{err}");
}

#[test]
fn random_rejected() {
    let err = synth_err(
        "module R(input wire clk, output wire [31:0] o);\n\
         reg [31:0] r;\n\
         always @(posedge clk) r <= $random;\n\
         assign o = r;\nendmodule",
        "R",
    );
    assert!(err.to_string().contains("unsynthesizable"), "{err}");
}

#[test]
fn initial_statements_rejected() {
    let err = synth_err(
        "module I(input wire clk, output wire o);\n\
         reg r;\n\
         initial $display(\"hello\");\n\
         assign o = r;\nendmodule",
        "I",
    );
    assert!(err.to_string().contains("initial"), "{err}");
}

#[test]
fn blocking_in_clocked_block() {
    // Blocking assignments chain combinationally within the cycle.
    let mut hw = hw_of(
        "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] a = 1; reg [7:0] b = 2;\n\
         always @(posedge clk) begin a = b; b = a; end\n\
         assign o = b;\nendmodule",
        "T",
    );
    hw.step_clock(0);
    assert_eq!(hw.get_by_name("o").unwrap().to_u64(), 2);
    assert_eq!(hw.get_by_name("a").unwrap().to_u64(), 2);
}

#[test]
fn area_and_timing_estimates() {
    let design = design_of(
        "module A(input wire clk, input wire [31:0] x, output wire [31:0] o);\n\
         reg [31:0] acc = 0;\n\
         always @(posedge clk) acc <= acc + x * x;\n\
         assign o = acc;\nendmodule",
        "A",
    );
    let nl = synthesize(&design).unwrap();
    let area = estimate_area(&nl);
    assert!(area.registers >= 32);
    assert!(area.logic_elements > 0);
    assert!(area.dsp_blocks > 0, "multiplier should use DSPs");
    let timing = estimate_timing(&nl);
    assert!(timing.logic_depth >= 2);
    assert!(timing.fmax_mhz > 1.0 && timing.fmax_mhz < 500.0);
}

#[test]
fn hash_consing_shares_cells() {
    let design = design_of(
        "module H(input wire [7:0] a, input wire [7:0] b, output wire [7:0] x, output wire [7:0] y);\n\
         assign x = (a + b) ^ 8'hff;\n\
         assign y = (a + b) ^ 8'h0f;\nendmodule",
        "H",
    );
    let nl = synthesize(&design).unwrap();
    // One shared adder: count Add cells.
    let adds = nl
        .nets
        .iter()
        .filter(|n| matches!(&n.def, crate::Def::Cell(c) if c.op == crate::CellOp::Add))
        .count();
    assert_eq!(adds, 1, "common subexpression should be shared");
}

#[test]
fn constant_folding() {
    let design = design_of(
        "module C(input wire clk, output wire [7:0] o);\n\
         localparam X = 12;\n\
         wire [7:0] k = X * 2 + 1;\n\
         assign o = k;\nendmodule",
        "C",
    );
    let nl = synthesize(&design).unwrap();
    assert_eq!(nl.cell_count(), 0, "everything folds to constants");
    let hw = NetlistSim::new(Arc::new(nl)).unwrap();
    assert_eq!(hw.get_by_name("o").unwrap().to_u64(), 25);
}

// ----------------------------------------------------------------------
// Interpreter/netlist equivalence — the key correctness property: the
// hardware engine must be observationally identical to the software engine.
// ----------------------------------------------------------------------

fn assert_equivalent(
    src: &str,
    top: &str,
    inputs: &[(&str, u64, u32)],
    cycles: u32,
    outputs: &[&str],
) {
    let design = Arc::new(design_of(src, top));
    let mut sw = Simulator::new(Arc::clone(&design));
    sw.initialize().unwrap();
    let nl = synthesize(&design).unwrap();
    let mut hw = NetlistSim::new(Arc::new(nl)).unwrap();
    for &(name, value, width) in inputs {
        sw.poke(name, Bits::from_u64(width, value));
        hw.set_by_name(name, Bits::from_u64(width, value));
    }
    sw.settle().unwrap();
    for _ in 0..cycles {
        sw.tick("clk").unwrap();
        hw.step_clock(0);
        for out in outputs {
            assert_eq!(
                sw.peek(out),
                hw.get_by_name(out).unwrap(),
                "divergence on `{out}` at t={}",
                sw.time()
            );
        }
    }
}

#[test]
fn equivalence_running_example_core() {
    assert_equivalent(
        cascade_verilog::corpus::RUNNING_EXAMPLE_SYNTH,
        "Main",
        &[("pad", 0, 4)],
        20,
        &["led", "cnt"],
    );
}

#[test]
fn equivalence_alu() {
    let src = "module Alu(input wire clk, input wire [2:0] op, input wire [15:0] a,\n\
               input wire [15:0] b, output wire [15:0] o);\n\
        reg [15:0] r = 0;\n\
        always @(posedge clk)\n\
          case (op)\n\
            3'd0: r <= a + b;\n\
            3'd1: r <= a - b;\n\
            3'd2: r <= a & b;\n\
            3'd3: r <= a | b;\n\
            3'd4: r <= a ^ b;\n\
            3'd5: r <= a << b[3:0];\n\
            3'd6: r <= a >> b[3:0];\n\
            default: r <= ~a;\n\
          endcase\n\
        assign o = r;\nendmodule";
    for op in 0..8u64 {
        assert_equivalent(
            src,
            "Alu",
            &[("op", op, 3), ("a", 0xbeef, 16), ("b", 0x0123, 16)],
            3,
            &["o"],
        );
    }
}

#[test]
fn equivalence_shift_register_with_feedback() {
    assert_equivalent(
        "module Lfsr(input wire clk, output wire [15:0] o);\n\
         reg [15:0] r = 16'hace1;\n\
         wire fb = r[0] ^ r[2] ^ r[3] ^ r[5];\n\
         always @(posedge clk) r <= {fb, r[15:1]};\n\
         assign o = r;\nendmodule",
        "Lfsr",
        &[],
        50,
        &["o"],
    );
}

#[test]
fn equivalence_concat_and_parts() {
    assert_equivalent(
        "module P(input wire clk, input wire [15:0] x, output wire [15:0] o);\n\
         reg [15:0] r = 0;\n\
         always @(posedge clk) begin\n\
           r[7:0] <= x[15:8];\n\
           r[15:8] <= x[7:0] ^ 8'h55;\n\
         end\n\
         assign o = r;\nendmodule",
        "P",
        &[("x", 0xabcd, 16)],
        4,
        &["o"],
    );
}

#[test]
fn equivalence_signed_ops() {
    assert_equivalent(
        "module S(input wire clk, input wire signed [7:0] a, input wire signed [7:0] b,\n\
                  output wire [7:0] q, output wire lt, output wire [7:0] sh);\n\
         reg [7:0] qq = 0; reg l = 0; reg [7:0] s = 0;\n\
         always @(posedge clk) begin\n\
           qq <= a / b;\n\
           l <= a < b;\n\
           s <= a >>> 2;\n\
         end\n\
         assign q = qq; assign lt = l; assign sh = s;\nendmodule",
        "S",
        &[("a", 0xf8, 8), ("b", 3, 8)], // a = -8
        3,
        &["q", "lt", "sh"],
    );
}

#[test]
fn equivalence_dynamic_selects() {
    assert_equivalent(
        "module D(input wire clk, input wire [4:0] sel, input wire [31:0] x,\n\
                  output wire bit_out, output wire [7:0] slice_out);\n\
         reg b = 0; reg [7:0] s = 0;\n\
         always @(posedge clk) begin\n\
           b <= x[sel];\n\
           s <= x[sel +: 8];\n\
         end\n\
         assign bit_out = b; assign slice_out = s;\nendmodule",
        "D",
        &[("sel", 7, 5), ("x", 0xdead_beef, 32)],
        3,
        &["bit_out", "slice_out"],
    );
}

#[test]
fn functions_synthesize_and_match_interpreter() {
    assert_equivalent(
        "module T(input wire clk, input wire [7:0] a, input wire [7:0] b, output wire [7:0] o);\n\
         reg [7:0] r = 0;\n\
         function [7:0] max2;\n\
           input [7:0] x; input [7:0] y;\n\
           max2 = (x > y) ? x : y;\n\
         endfunction\n\
         always @(posedge clk) r <= max2(a, b) + max2(r, 8'd3);\n\
         assign o = r;\nendmodule",
        "T",
        &[("a", 14, 8), ("b", 5, 8)],
        4,
        &["o"],
    );
}

#[test]
fn generate_blocks_synthesize_and_match() {
    assert_equivalent(
        "module T(input wire clk, input wire [7:0] a, output wire [7:0] o);\n\
           reg [7:0] r = 0;\n\
           wire [7:0] swizzled;\n\
           genvar i;\n\
           generate\n\
             for (i = 0; i < 8; i = i + 1) begin : sw\n\
               assign swizzled[i] = a[7 - i];\n\
             end\n\
           endgenerate\n\
           always @(posedge clk) r <= r ^ swizzled;\n\
           assign o = r;\nendmodule",
        "T",
        &[("a", 0b1100_0101, 8)],
        3,
        &["o"],
    );
}

#[test]
fn specialization_shrinks_and_preserves_behaviour() {
    // The paper's future-work dynamic optimization (Sec. 9): pin an input
    // to its observed runtime value and the design gets smaller while
    // behaving identically for that value.
    let design = design_of(
        "module T(input wire clk, input wire mode, input wire [15:0] x, output wire [15:0] o);\n\
         reg [15:0] acc = 0;\n\
         always @(posedge clk)\n\
           if (mode) acc <= acc * x + 16'h1234;\n\
           else acc <= acc + x;\n\
         assign o = acc;\nendmodule",
        "T",
    );
    let nl = Arc::new(synthesize(&design).unwrap());
    let mode_net = nl.net_by_name("mode").unwrap();
    let spec = crate::specialize(&nl, &[(mode_net, Bits::from_u64(1, 0))]);
    let full_area = estimate_area(&nl).logic_elements;
    let spec_area = estimate_area(&spec).logic_elements;
    assert!(
        spec_area < full_area / 2,
        "specializing away the multiplier path should shrink: {spec_area} vs {full_area}"
    );
    // Behaviour matches the general netlist with mode pinned low.
    let mut general = NetlistSim::new(Arc::clone(&nl)).unwrap();
    general.set_by_name("mode", Bits::from_u64(1, 0));
    let mut special = NetlistSim::new(Arc::new(spec)).unwrap();
    for step in 0..6u64 {
        let x = Bits::from_u64(16, 31 * step + 7);
        general.set_by_name("x", x.clone());
        special.set_by_name("x", x);
        general.step_clock(0);
        special.step_clock(0);
        assert_eq!(
            general.get_by_name("o").unwrap(),
            special.get_by_name("o").unwrap(),
            "step {step}"
        );
    }
}

#[test]
fn const_fold_pass_is_idempotent() {
    let design = design_of(
        "module T(input wire [7:0] a, output wire [7:0] o);\n\
         assign o = a + 8'd3 + 8'd4;\nendmodule",
        "T",
    );
    let mut nl = synthesize(&design).unwrap();
    let before = nl.cell_count();
    crate::const_fold(&mut nl);
    assert_eq!(nl.cell_count(), before, "builder already folded");
}

#[test]
fn fingerprint_is_stable_and_structure_sensitive() {
    let src = "module T(input wire clk, output wire [7:0] o);\n\
         reg [7:0] c = 0;\n\
         always @(posedge clk) c <= c + 1;\n\
         assign o = c;\nendmodule";
    let a = crate::fingerprint(&synthesize(&design_of(src, "T")).unwrap());
    let b = crate::fingerprint(&synthesize(&design_of(src, "T")).unwrap());
    assert_eq!(a, b, "same source, same netlist, same fingerprint");
    // A different increment constant must change the hash.
    let c =
        crate::fingerprint(&synthesize(&design_of(&src.replace("c + 1", "c + 2"), "T")).unwrap());
    assert_ne!(a, c);
    // A pure formatting change must not.
    let d =
        crate::fingerprint(&synthesize(&design_of(&src.replace("c + 1", "c  +  1"), "T")).unwrap());
    assert_eq!(a, d, "whitespace-only edits share a cache entry");
}
