//! The netlist evaluator: a compiled word-arena simulator.
//!
//! Where `cascade-sim` walks an AST event queue, this evaluator lowers the
//! levelized netlist into a flat instruction program over a `Vec<u64>` word
//! arena at construction time (see [`crate::exec`]) and executes it with
//! activity-driven scheduling: only the fan-out cone of nets that actually
//! changed is re-evaluated. The previous interpretive loop survives as
//! [`crate::ReferenceSim`] for benchmarking and differential testing.

use crate::exec::{kernel_name, NlProfileState, Program, ProgramStats, State};
use crate::ir::*;
use crate::level::LevelError;
use crate::par::EvalPool;
use cascade_bits::Bits;
use cascade_verilog::ast::Edge;
use std::cmp::Ordering;
use std::sync::Arc;

/// A system-task firing observed at a clock edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFire {
    pub kind: TaskKind,
    /// Rendered text for display/write/fatal (empty for finish).
    pub text: String,
}

/// Activity profile of the arena evaluator: where settle work actually
/// went, attributed to combinational levels, kernel kinds, and (named)
/// output nets. Produced by [`NetlistSim::profile_report`].
#[derive(Debug, Clone, Default)]
pub struct NlProfileReport {
    /// `(level, instruction executions)` for levels that saw work.
    pub levels: Vec<(u32, u64)>,
    /// Executions per kernel kind, hottest first.
    pub kernels: Vec<(&'static str, u64)>,
    /// Executions per output net, hottest first (top 16). Unnamed
    /// temporaries appear as `$n<id>`.
    pub hot_nets: Vec<(String, u64)>,
    /// `(level, share)` of each level's executions that ran split across
    /// the worker pool (thread utilization of the cutover heuristic).
    /// Empty when no pool is attached or no level crossed the cutover.
    pub level_util: Vec<(u32, f64)>,
    /// `(kernel, occupancy)`: the share of evaluated lanes whose output
    /// actually changed, per kernel kind, on the change-tracking paths.
    /// Low occupancy on a wide batch means lanes have diverged.
    pub kernel_occupancy: Vec<(&'static str, f64)>,
    /// Lane count of the profiled evaluator (1 for the scalar engine).
    pub lanes: u32,
    /// Worker-pool threads attached (1 = single-threaded).
    pub threads: u32,
}

/// Executes a synthesized [`Netlist`] cycle by cycle.
///
/// Construction compiles the netlist into a word-arena program; after that,
/// settling touches only dirty logic and a quiescent netlist costs nothing
/// to re-settle. Clones share the compiled program and fork the mutable
/// state.
///
/// # Examples
///
/// ```
/// use cascade_netlist::{synthesize, NetlistSim};
/// use cascade_sim::{elaborate, library_from_source};
/// use cascade_bits::Bits;
///
/// let lib = library_from_source(
///     "module Count(input wire clk, output wire [7:0] o);\n\
///      reg [7:0] c = 0;\n\
///      always @(posedge clk) c <= c + 1;\n\
///      assign o = c;\nendmodule",
/// )?;
/// let design = elaborate("Count", &lib, &Default::default())?;
/// let netlist = synthesize(&design)?;
/// let mut sim = NetlistSim::new(netlist.into())?;
/// for _ in 0..3 { sim.step_clock(0); }
/// assert_eq!(sim.get_by_name("o").unwrap().to_u64(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistSim {
    nl: Arc<Netlist>,
    prog: Arc<Program>,
    st: State,
    tasks: Vec<TaskFire>,
    finished: bool,
    /// Cycles executed per clock domain.
    cycles: u64,
}

impl NetlistSim {
    /// Builds the evaluator: levelizes the netlist and compiles it into the
    /// word-arena program.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] when the netlist has a combinational cycle.
    pub fn new(nl: Arc<Netlist>) -> Result<Self, LevelError> {
        let prog = Arc::new(Program::compile(&nl)?);
        let st = State::new(&nl, &prog);
        Ok(NetlistSim {
            nl,
            prog,
            st,
            tasks: Vec::new(),
            finished: false,
            cycles: 0,
        })
    }

    /// The netlist being executed.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.nl
    }

    /// Size counters of the compiled program (diagnostics, benches).
    pub fn program_stats(&self) -> ProgramStats {
        self.prog.stats()
    }

    /// Instruction counts by kernel kind (diagnostic).
    pub fn kernel_histogram(&self) -> Vec<(&'static str, usize)> {
        self.prog.kernel_histogram()
    }

    /// Switches on activity profiling: per-level and per-instruction
    /// execution counters feeding [`profile_report`](Self::profile_report).
    /// Costs one counter bump per executed instruction while enabled and a
    /// single branch per settle call when it never was (the default).
    pub fn enable_profiling(&mut self) {
        self.st.enable_profiling(&self.prog);
    }

    /// Aggregated activity counters, or `None` when profiling was never
    /// enabled. Kernel and net attribution use source-level names where
    /// the netlist kept them.
    pub fn profile_report(&self) -> Option<NlProfileReport> {
        let p = self.st.profile()?;
        Some(build_profile_report(
            &self.nl,
            &self.prog,
            p,
            self.st.pool_threads(),
        ))
    }

    /// Attaches a worker pool of `n` total threads for dense settles
    /// (`n <= 1` detaches). Wide combinational levels are split into
    /// contiguous chunks across the pool; narrow levels — statically, or
    /// as observed by the activity histograms when profiling is on — stay
    /// single-threaded.
    pub fn set_eval_threads(&mut self, n: u32) {
        let pool = (n > 1).then(|| Arc::new(EvalPool::new(n as usize)));
        self.st.set_pool(&self.prog, pool);
    }

    /// Whether a `$finish` task has fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total clock edges executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drains task firings observed so far.
    pub fn drain_tasks(&mut self) -> Vec<TaskFire> {
        std::mem::take(&mut self.tasks)
    }

    /// Whether any task firings are pending.
    pub fn has_tasks(&self) -> bool {
        !self.tasks.is_empty()
    }

    /// Sets an input net and repropagates combinational logic. Only the
    /// fan-out cone of the input is re-evaluated, and only when the value
    /// actually changed.
    pub fn set_input(&mut self, net: NetId, value: Bits) {
        let slot = self.prog.slots[net.0 as usize];
        let v = value.resize(slot.width);
        if self.st.write_slot(slot, &v) {
            self.st.mark(&self.prog, net.0);
            self.st.settle_auto(&self.prog);
        }
    }

    /// Sets an input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no input net has this name.
    pub fn set_by_name(&mut self, name: &str, value: Bits) {
        let net = self
            .nl
            .net_by_name(name)
            .unwrap_or_else(|| panic!("unknown net `{name}`"));
        self.set_input(net, value);
    }

    /// Reads any net's current value.
    pub fn get(&self, net: NetId) -> Bits {
        self.st.slot_bits(self.prog.slots[net.0 as usize])
    }

    /// Reads the low 64 bits of a net without materializing a [`Bits`]
    /// (zero-copy fast path for MMIO polling).
    pub fn get_u64(&self, net: NetId) -> u64 {
        let slot = self.prog.slots[net.0 as usize];
        self.st.arena[slot.off as usize]
    }

    /// Reads a net by name.
    pub fn get_by_name(&self, name: &str) -> Option<Bits> {
        self.nl.net_by_name(name).map(|n| self.get(n))
    }

    /// Reads one word of a memory.
    pub fn read_mem(&self, mem: MemId, addr: u64) -> Bits {
        self.st.read_mem(&self.prog, mem.0, addr)
    }

    /// Writes one word of a memory directly (state restoration).
    pub fn write_mem(&mut self, mem: MemId, addr: u64, value: Bits) {
        self.st.write_mem(&self.prog, mem.0, addr, &value);
        self.st.settle_auto(&self.prog);
    }

    /// Overwrites a register's current value (state restoration), without
    /// repropagating; call [`NetlistSim::settle`] when done.
    pub fn write_reg(&mut self, reg: RegId, value: Bits) {
        let q = self.nl.regs[reg.0 as usize].q;
        let slot = self.prog.slots[q.0 as usize];
        if self.st.write_slot(slot, &value.resize(slot.width)) {
            self.st.mark(&self.prog, q.0);
        }
    }

    /// Reads a register's current value.
    pub fn read_reg(&self, reg: RegId) -> Bits {
        self.get(self.nl.regs[reg.0 as usize].q)
    }

    /// Whether any register of the domain would change value at the next
    /// clock edge (word-level compare of each `d` against its `q`), or any
    /// memory write port is enabled. The MMIO `ThereAreUpdates` register.
    pub fn updates_pending(&self, clock_index: u32) -> bool {
        let Some(plan) = self.prog.domains.get(clock_index as usize) else {
            return false;
        };
        for rc in plan.small.iter().chain(&plan.regs) {
            let q_off = rc.q.off as usize;
            let d_off = rc.d.off as usize;
            let q_words = rc.q.words as usize;
            let d_words = rc.d.words as usize;
            let topmask = crate::exec::top_word_mask(rc.q.width);
            for k in 0..q_words {
                let mut d = if k < d_words {
                    self.st.arena[d_off + k]
                } else {
                    0
                };
                if k == q_words - 1 {
                    d &= topmask;
                }
                if d != self.st.arena[q_off + k] {
                    return true;
                }
            }
        }
        plan.ports.iter().any(|pc| self.st.slot_bool(pc.enable))
    }

    /// Drains any pending dirty logic to a fixed point. A no-op when the
    /// netlist is quiescent.
    pub fn settle(&mut self) {
        self.st.settle_auto(&self.prog);
    }

    /// Executes one edge of the given clock domain: samples task triggers
    /// and register/memory inputs, commits them, and repropagates. One call
    /// corresponds to one hardware clock cycle.
    pub fn step_clock(&mut self, clock_index: u32) {
        if self.finished {
            return;
        }
        let prog = Arc::clone(&self.prog);
        self.st.settle_auto(&prog);
        self.fire_tasks(&prog, clock_index);
        // `$finish` executes before the nonblocking-update region: an edge
        // that finishes discards its pending commits, the same boundary
        // the event-driven simulator observes.
        if !self.finished {
            self.st.commit_domain(&prog, clock_index as usize);
        }
        self.cycles += 1;
        self.st.settle_auto(&prog);
    }

    /// Samples task triggers of one domain at their pre-edge values.
    fn fire_tasks(&mut self, prog: &Program, clock_index: u32) {
        let Some(plan) = prog.domains.get(clock_index as usize) else {
            return;
        };
        for &ti in &plan.tasks {
            let task = &self.nl.tasks[ti as usize];
            if !self.st.slot_bool(prog.slots[task.trigger.0 as usize]) {
                continue;
            }
            let args: Vec<Bits> = task
                .args
                .iter()
                .map(|a| self.st.slot_bits(prog.slots[a.0 as usize]))
                .collect();
            let text = match (&task.format, task.kind) {
                (_, TaskKind::Finish) => String::new(),
                (Some(f), _) => cascade_sim::format_verilog(f, &args),
                (None, _) => args
                    .iter()
                    .zip(task.arg_signed.iter().chain(std::iter::repeat(&false)))
                    .map(|(v, &s)| {
                        if s {
                            v.to_signed_decimal_string()
                        } else {
                            v.to_decimal_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" "),
            };
            if matches!(task.kind, TaskKind::Finish | TaskKind::Fatal) {
                self.finished = true;
            }
            self.tasks.push(TaskFire {
                kind: task.kind,
                text,
            });
        }
    }

    /// Runs `n` cycles of clock domain 0, stopping early on `$finish`.
    /// Returns the number of cycles actually executed.
    pub fn run(&mut self, n: u64) -> u64 {
        self.run_cycles(n, usize::MAX)
    }

    /// Batched open-loop execution: runs up to `n` edges of clock domain 0,
    /// stopping early when `$finish` fires or when `budget` task firings
    /// are buffered (so a host can drain `$display` output promptly).
    /// Returns the number of cycles actually executed.
    ///
    /// This is the entry point the MMIO `OpenLoop` register maps to: the
    /// whole batch executes inside the evaluator with no per-cycle host
    /// round trip.
    pub fn run_cycles(&mut self, n: u64, budget: usize) -> u64 {
        let prog = Arc::clone(&self.prog);
        // When a settle goes dense, activity bookkeeping stops paying for
        // itself entirely: the next PROBE-1 commits skip change detection
        // and marking (the dense pass recomputes everything anyway), then
        // one marked commit re-seeds the worklists so the schedule can
        // drop back to sparse if the design quiesces.
        const PROBE: u64 = 64;
        let mut dense_left = 0u64;
        let mut done = 0;
        while done < n && !self.finished {
            if dense_left > 0 {
                self.st.settle_dense(&prog);
            } else if self.st.wave_is_dense(&prog) {
                self.st.settle_dense(&prog);
                dense_left = PROBE;
            } else {
                self.st.settle(&prog);
            }
            self.fire_tasks(&prog, 0);
            if self.finished {
                // A `$finish` edge drops its commits (see `step_clock`).
                self.cycles += 1;
                done += 1;
                break;
            }
            if dense_left > 1 {
                self.st.commit_domain_nomark(&prog, 0);
                dense_left -= 1;
            } else {
                self.st.commit_domain(&prog, 0);
                dense_left = 0;
            }
            self.cycles += 1;
            done += 1;
            if self.tasks.len() >= budget {
                break;
            }
        }
        if dense_left > 0 {
            // The last commit skipped marking; only a full pass is sound.
            self.st.settle_dense(&prog);
        } else {
            self.st.settle_auto(&prog);
        }
        done
    }
}

/// Builds the user-facing activity report from raw counters. Shared by
/// the scalar evaluator and the batch harness.
pub(crate) fn build_profile_report(
    nl: &Netlist,
    prog: &Program,
    p: &NlProfileState,
    threads: u32,
) -> NlProfileReport {
    let levels: Vec<(u32, u64)> = p
        .level_execs
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(lvl, &n)| (lvl as u32, n))
        .collect();
    let level_util: Vec<(u32, f64)> = p
        .level_par_execs
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(lvl, &n)| (lvl as u32, n as f64 / p.level_execs[lvl].max(1) as f64))
        .collect();
    let mut by_kernel: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut by_net: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    // Occupancy numerator/denominator per kernel: changed lanes over
    // evaluated lanes, on the paths that track changes.
    let mut occ: std::collections::BTreeMap<&'static str, (u64, u64)> =
        std::collections::BTreeMap::new();
    let lanes = p.lanes.max(1) as u64;
    for (i, &n) in p.instr_execs.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let ins = &prog.instrs[i];
        let kname = kernel_name(&ins.kernel);
        *by_kernel.entry(kname).or_default() += n;
        if p.instr_tracked[i] > 0 {
            let e = occ.entry(kname).or_default();
            e.0 += p.instr_changes[i];
            e.1 += p.instr_tracked[i] * lanes;
        }
        let name = match &nl.nets[ins.out as usize].name {
            Some(name) => name.clone(),
            None => format!("$n{}", ins.out),
        };
        *by_net.entry(name).or_default() += n;
    }
    let mut kernels: Vec<(&'static str, u64)> = by_kernel.into_iter().collect();
    kernels.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut kernel_occupancy: Vec<(&'static str, f64)> = occ
        .into_iter()
        .map(|(k, (c, t))| (k, c as f64 / t.max(1) as f64))
        .collect();
    kernel_occupancy.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
    let mut hot_nets: Vec<(String, u64)> = by_net.into_iter().collect();
    hot_nets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot_nets.truncate(16);
    NlProfileReport {
        levels,
        kernels,
        hot_nets,
        level_util,
        kernel_occupancy,
        lanes: p.lanes.max(1),
        threads: threads.max(1),
    }
}

/// Which edge a clock domain uses (for drivers that model both edges).
pub fn clock_edge(nl: &Netlist, clock_index: u32) -> Option<Edge> {
    nl.clocks.get(clock_index as usize).map(|&(_, e)| e)
}

/// Evaluates one cell over owned inputs (shared with the synthesizer's
/// constant folder).
pub fn eval_cell(op: CellOp, inputs: &[Bits], width: u32) -> Bits {
    let refs: Vec<&Bits> = inputs.iter().collect();
    eval_cell_refs(op, &refs, width)
}

pub(crate) fn eval_cell_refs(op: CellOp, inputs: &[&Bits], width: u32) -> Bits {
    use CellOp::*;
    let a = inputs.first().copied();
    let b = inputs.get(1).copied();
    match op {
        Not => a.expect("input").not(),
        Neg => a.expect("input").neg(),
        RedAnd => Bits::from_bool(a.expect("input").reduce_and()),
        RedOr => Bits::from_bool(a.expect("input").reduce_or()),
        RedXor => Bits::from_bool(a.expect("input").reduce_xor()),
        LogNot => Bits::from_bool(!a.expect("input").to_bool()),
        Add => a.expect("a").add(b.expect("b")).resize(width),
        Sub => a.expect("a").sub(b.expect("b")).resize(width),
        Mul => a.expect("a").mul(b.expect("b")).resize(width),
        DivU => a.expect("a").div(b.expect("b")).resize(width),
        RemU => a.expect("a").rem(b.expect("b")).resize(width),
        DivS => signed_div(a.expect("a"), b.expect("b")).resize(width),
        RemS => signed_rem(a.expect("a"), b.expect("b")).resize(width),
        And => a.expect("a").and(b.expect("b")).resize(width),
        Or => a.expect("a").or(b.expect("b")).resize(width),
        Xor => a.expect("a").xor(b.expect("b")).resize(width),
        Xnor => a.expect("a").xnor(b.expect("b")).resize(width),
        Shl => a.expect("a").shl(shift_amount(b.expect("b"))).resize(width),
        Shr => a.expect("a").shr(shift_amount(b.expect("b"))).resize(width),
        AShr => a
            .expect("a")
            .ashr(shift_amount(b.expect("b")))
            .resize(width),
        Eq => Bits::from_bool(a.expect("a").eq_value(b.expect("b"))),
        Ne => Bits::from_bool(!a.expect("a").eq_value(b.expect("b"))),
        LtU => Bits::from_bool(a.expect("a").cmp_unsigned(b.expect("b")) == Ordering::Less),
        LeU => Bits::from_bool(a.expect("a").cmp_unsigned(b.expect("b")) != Ordering::Greater),
        LtS => Bits::from_bool(a.expect("a").cmp_signed(b.expect("b")) == Ordering::Less),
        LeS => Bits::from_bool(a.expect("a").cmp_signed(b.expect("b")) != Ordering::Greater),
        Mux => {
            if inputs[0].to_bool() {
                inputs[1].resize(width)
            } else {
                inputs[2].resize(width)
            }
        }
        Concat => {
            // Inputs are MSB-first.
            let mut acc = Bits::zero(0);
            for part in inputs {
                acc = acc.concat(part);
            }
            acc.resize(width)
        }
        Slice { offset } => a.expect("input").slice(offset, width),
        DynSlice => {
            let off = shift_amount(b.expect("offset"));
            a.expect("input").slice(off, width)
        }
        ZExt => a.expect("input").resize(width),
        SExt => a.expect("input").resize_signed(width),
        Repeat { count } => a.expect("input").repeat(count).resize(width),
    }
}

fn shift_amount(b: &Bits) -> u32 {
    b.to_u64().min(u32::MAX as u64) as u32
}

fn signed_div(l: &Bits, r: &Bits) -> Bits {
    let w = l.width().max(r.width());
    if !r.to_bool() {
        return Bits::ones(w);
    }
    if w <= 64 {
        // Word fast path: no magnitude temporaries.
        let q = l.to_i64().wrapping_div(r.to_i64());
        return Bits::from_u64(w, q as u64);
    }
    let ln = l.msb();
    let rn = r.msb();
    // Negate into a temporary only for the negative operand; borrow the
    // positive one directly.
    let la;
    let ra;
    let lm = if ln {
        la = l.neg();
        &la
    } else {
        l
    };
    let rm = if rn {
        ra = r.neg();
        &ra
    } else {
        r
    };
    let q = lm.div(rm);
    if ln ^ rn {
        q.neg()
    } else {
        q
    }
}

fn signed_rem(l: &Bits, r: &Bits) -> Bits {
    let w = l.width().max(r.width());
    if !r.to_bool() {
        return Bits::ones(w);
    }
    if w <= 64 {
        let m = l.to_i64().wrapping_rem(r.to_i64());
        return Bits::from_u64(w, m as u64);
    }
    let ln = l.msb();
    let la;
    let ra;
    let lm = if ln {
        la = l.neg();
        &la
    } else {
        l
    };
    let rm = if r.msb() {
        ra = r.neg();
        &ra
    } else {
        r
    };
    let m = lm.rem(rm);
    if ln {
        m.neg()
    } else {
        m
    }
}
