//! The netlist evaluator: a Verilator-style compiled-schedule simulator.
//!
//! Where `cascade-sim` walks an AST event queue, this evaluator executes a
//! precomputed topological order of word-level cells — the performance model
//! for code that has been moved onto the (virtual) FPGA fabric.

use crate::ir::*;
use crate::level::{levelize, LevelError};
use cascade_bits::Bits;
use cascade_verilog::ast::Edge;
use std::cmp::Ordering;
use std::sync::Arc;

/// A system-task firing observed at a clock edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFire {
    pub kind: TaskKind,
    /// Rendered text for display/write/fatal (empty for finish).
    pub text: String,
}

/// Executes a synthesized [`Netlist`] cycle by cycle.
///
/// # Examples
///
/// ```
/// use cascade_netlist::{synthesize, NetlistSim};
/// use cascade_sim::{elaborate, library_from_source};
/// use cascade_bits::Bits;
///
/// let lib = library_from_source(
///     "module Count(input wire clk, output wire [7:0] o);\n\
///      reg [7:0] c = 0;\n\
///      always @(posedge clk) c <= c + 1;\n\
///      assign o = c;\nendmodule",
/// )?;
/// let design = elaborate("Count", &lib, &Default::default())?;
/// let netlist = synthesize(&design)?;
/// let mut sim = NetlistSim::new(netlist.into())?;
/// for _ in 0..3 { sim.step_clock(0); }
/// assert_eq!(sim.get_by_name("o").unwrap().to_u64(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistSim {
    nl: Arc<Netlist>,
    values: Vec<Bits>,
    mems: Vec<Vec<Bits>>,
    /// Topological evaluation order of cell/memread nets.
    order: Vec<NetId>,
    tasks: Vec<TaskFire>,
    finished: bool,
    /// Cycles executed per clock domain.
    cycles: u64,
}

impl NetlistSim {
    /// Builds the evaluator, levelizing the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LevelError`] when the netlist has a combinational cycle.
    pub fn new(nl: Arc<Netlist>) -> Result<Self, LevelError> {
        let order = levelize(&nl)?;
        let values = nl
            .nets
            .iter()
            .map(|n| match &n.def {
                Def::Const(c) => c.resize(n.width),
                Def::Reg(r) => nl.regs[r.0 as usize].init.resize(n.width),
                Def::Input | Def::Undriven | Def::Cell(_) | Def::MemRead { .. } => {
                    Bits::zero(n.width)
                }
            })
            .collect();
        let mems = nl
            .mems
            .iter()
            .map(|m| vec![Bits::zero(m.width); m.words as usize])
            .collect();
        let mut sim = NetlistSim { nl, values, mems, order, tasks: Vec::new(), finished: false, cycles: 0 };
        sim.settle();
        Ok(sim)
    }

    /// The netlist being executed.
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.nl
    }

    /// Whether a `$finish` task has fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total clock edges executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drains task firings observed so far.
    pub fn drain_tasks(&mut self) -> Vec<TaskFire> {
        std::mem::take(&mut self.tasks)
    }

    /// Whether any task firings are pending.
    pub fn has_tasks(&self) -> bool {
        !self.tasks.is_empty()
    }

    /// Sets an input net and repropagates combinational logic.
    pub fn set_input(&mut self, net: NetId, value: Bits) {
        let w = self.nl.width(net);
        self.values[net.0 as usize] = value.resize(w);
        self.settle();
    }

    /// Sets an input by port name.
    ///
    /// # Panics
    ///
    /// Panics if no input net has this name.
    pub fn set_by_name(&mut self, name: &str, value: Bits) {
        let net = self
            .nl
            .net_by_name(name)
            .unwrap_or_else(|| panic!("unknown net `{name}`"));
        self.set_input(net, value);
    }

    /// Reads any net's current value.
    pub fn get(&self, net: NetId) -> &Bits {
        &self.values[net.0 as usize]
    }

    /// Reads a net by name.
    pub fn get_by_name(&self, name: &str) -> Option<&Bits> {
        self.nl.net_by_name(name).map(|n| self.get(n))
    }

    /// Reads one word of a memory.
    pub fn read_mem(&self, mem: MemId, addr: u64) -> Bits {
        self.mems[mem.0 as usize]
            .get(addr as usize)
            .cloned()
            .unwrap_or_else(|| Bits::zero(self.nl.mems[mem.0 as usize].width))
    }

    /// Writes one word of a memory directly (state restoration).
    pub fn write_mem(&mut self, mem: MemId, addr: u64, value: Bits) {
        let w = self.nl.mems[mem.0 as usize].width;
        if let Some(slot) = self.mems[mem.0 as usize].get_mut(addr as usize) {
            *slot = value.resize(w);
        }
    }

    /// Overwrites a register's current value (state restoration), without
    /// repropagating; call [`NetlistSim::settle`] when done.
    pub fn write_reg(&mut self, reg: RegId, value: Bits) {
        let q = self.nl.regs[reg.0 as usize].q;
        let w = self.nl.width(q);
        self.values[q.0 as usize] = value.resize(w);
    }

    /// Reads a register's current value.
    pub fn read_reg(&self, reg: RegId) -> &Bits {
        let q = self.nl.regs[reg.0 as usize].q;
        self.get(q)
    }

    /// Recomputes all combinational nets in topological order.
    pub fn settle(&mut self) {
        let nl = Arc::clone(&self.nl);
        for &net in &self.order {
            let value = match &nl.nets[net.0 as usize].def {
                Def::Cell(cell) => {
                    let inputs: Vec<&Bits> =
                        cell.inputs.iter().map(|i| &self.values[i.0 as usize]).collect();
                    eval_cell_refs(cell.op, &inputs, nl.width(net))
                }
                Def::MemRead { mem, addr } => {
                    let a = self.values[addr.0 as usize].to_u64();
                    self.read_mem(*mem, a)
                }
                _ => continue,
            };
            self.values[net.0 as usize] = value;
        }
    }

    /// Executes one edge of the given clock domain: samples task triggers
    /// and register/memory inputs, commits them, and repropagates. One call
    /// corresponds to one hardware clock cycle.
    pub fn step_clock(&mut self, clock_index: u32) {
        if self.finished {
            return;
        }
        let nl = Arc::clone(&self.nl);
        let clock = ClockId(clock_index);
        // Sample phase (pre-edge values).
        let mut reg_updates: Vec<(NetId, Bits)> = Vec::new();
        for reg in &nl.regs {
            if reg.clock == clock {
                reg_updates.push((reg.q, self.values[reg.d.0 as usize].clone()));
            }
        }
        let mut mem_updates: Vec<(MemId, u64, Bits)> = Vec::new();
        for (mi, mem) in nl.mems.iter().enumerate() {
            for port in &mem.write_ports {
                if port.clock == clock && self.values[port.enable.0 as usize].to_bool() {
                    let addr = self.values[port.addr.0 as usize].to_u64();
                    mem_updates.push((MemId(mi as u32), addr, self.values[port.data.0 as usize].clone()));
                }
            }
        }
        for task in &nl.tasks {
            if task.clock == clock && self.values[task.trigger.0 as usize].to_bool() {
                let args: Vec<Bits> =
                    task.args.iter().map(|a| self.values[a.0 as usize].clone()).collect();
                let text = match (&task.format, task.kind) {
                    (_, TaskKind::Finish) => String::new(),
                    (Some(f), _) => cascade_sim::format_verilog(f, &args),
                    (None, _) => args
                        .iter()
                        .zip(task.arg_signed.iter().chain(std::iter::repeat(&false)))
                        .map(|(v, &s)| {
                            if s {
                                v.to_signed_decimal_string()
                            } else {
                                v.to_decimal_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                };
                if matches!(task.kind, TaskKind::Finish | TaskKind::Fatal) {
                    self.finished = true;
                }
                self.tasks.push(TaskFire { kind: task.kind, text });
            }
        }
        // Commit phase.
        for (q, v) in reg_updates {
            let w = nl.width(q);
            self.values[q.0 as usize] = v.resize(w);
        }
        for (mem, addr, v) in mem_updates {
            self.write_mem(mem, addr, v);
        }
        self.cycles += 1;
        self.settle();
    }

    /// Runs `n` cycles of clock domain 0, stopping early on `$finish`.
    /// Returns the number of cycles actually executed.
    pub fn run(&mut self, n: u64) -> u64 {
        let mut done = 0;
        for _ in 0..n {
            if self.finished {
                break;
            }
            self.step_clock(0);
            done += 1;
        }
        done
    }
}

/// Which edge a clock domain uses (for drivers that model both edges).
pub fn clock_edge(nl: &Netlist, clock_index: u32) -> Option<Edge> {
    nl.clocks.get(clock_index as usize).map(|&(_, e)| e)
}

/// Evaluates one cell over owned inputs (shared with the synthesizer's
/// constant folder).
pub fn eval_cell(op: CellOp, inputs: &[Bits], width: u32) -> Bits {
    let refs: Vec<&Bits> = inputs.iter().collect();
    eval_cell_refs(op, &refs, width)
}

fn eval_cell_refs(op: CellOp, inputs: &[&Bits], width: u32) -> Bits {
    use CellOp::*;
    let a = inputs.first().copied();
    let b = inputs.get(1).copied();
    match op {
        Not => a.expect("input").not(),
        Neg => a.expect("input").neg(),
        RedAnd => Bits::from_bool(a.expect("input").reduce_and()),
        RedOr => Bits::from_bool(a.expect("input").reduce_or()),
        RedXor => Bits::from_bool(a.expect("input").reduce_xor()),
        LogNot => Bits::from_bool(!a.expect("input").to_bool()),
        Add => a.expect("a").add(b.expect("b")).resize(width),
        Sub => a.expect("a").sub(b.expect("b")).resize(width),
        Mul => a.expect("a").mul(b.expect("b")).resize(width),
        DivU => a.expect("a").div(b.expect("b")).resize(width),
        RemU => a.expect("a").rem(b.expect("b")).resize(width),
        DivS => signed_div(a.expect("a"), b.expect("b")).resize(width),
        RemS => signed_rem(a.expect("a"), b.expect("b")).resize(width),
        And => a.expect("a").and(b.expect("b")).resize(width),
        Or => a.expect("a").or(b.expect("b")).resize(width),
        Xor => a.expect("a").xor(b.expect("b")).resize(width),
        Xnor => a.expect("a").xnor(b.expect("b")).resize(width),
        Shl => a.expect("a").shl(shift_amount(b.expect("b"))).resize(width),
        Shr => a.expect("a").shr(shift_amount(b.expect("b"))).resize(width),
        AShr => a.expect("a").ashr(shift_amount(b.expect("b"))).resize(width),
        Eq => Bits::from_bool(a.expect("a").eq_value(b.expect("b"))),
        Ne => Bits::from_bool(!a.expect("a").eq_value(b.expect("b"))),
        LtU => Bits::from_bool(a.expect("a").cmp_unsigned(b.expect("b")) == Ordering::Less),
        LeU => Bits::from_bool(a.expect("a").cmp_unsigned(b.expect("b")) != Ordering::Greater),
        LtS => Bits::from_bool(a.expect("a").cmp_signed(b.expect("b")) == Ordering::Less),
        LeS => Bits::from_bool(a.expect("a").cmp_signed(b.expect("b")) != Ordering::Greater),
        Mux => {
            if inputs[0].to_bool() {
                inputs[1].resize(width)
            } else {
                inputs[2].resize(width)
            }
        }
        Concat => {
            // Inputs are MSB-first.
            let mut acc = Bits::zero(0);
            for part in inputs {
                acc = acc.concat(part);
            }
            acc.resize(width)
        }
        Slice { offset } => a.expect("input").slice(offset, width),
        DynSlice => {
            let off = shift_amount(b.expect("offset"));
            a.expect("input").slice(off, width)
        }
        ZExt => a.expect("input").resize(width),
        SExt => a.expect("input").resize_signed(width),
        Repeat { count } => a.expect("input").repeat(count).resize(width),
    }
}

fn shift_amount(b: &Bits) -> u32 {
    b.to_u64().min(u32::MAX as u64) as u32
}

fn signed_div(l: &Bits, r: &Bits) -> Bits {
    let w = l.width().max(r.width());
    if !r.to_bool() {
        return Bits::ones(w);
    }
    let ln = l.msb();
    let rn = r.msb();
    let la = if ln { l.neg() } else { l.clone() };
    let ra = if rn { r.neg() } else { r.clone() };
    let q = la.div(&ra);
    if ln ^ rn {
        q.neg()
    } else {
        q
    }
}

fn signed_rem(l: &Bits, r: &Bits) -> Bits {
    let w = l.width().max(r.width());
    if !r.to_bool() {
        return Bits::ones(w);
    }
    let ln = l.msb();
    let la = if ln { l.neg() } else { l.clone() };
    let ra = if r.msb() { r.neg() } else { r.clone() };
    let m = la.rem(&ra);
    if ln {
        m.neg()
    } else {
        m
    }
}
