//! Area and timing estimation over a synthesized netlist.
//!
//! These estimates feed the virtual FPGA's resource and fmax model; the
//! constants approximate a Cyclone V-class device (4-input ALMs, M10K block
//! RAM). Absolute numbers are not calibrated against real silicon — only
//! relative comparisons (Cascade-wrapper overhead vs. direct compilation,
//! paper Sec. 6.1/6.2) are meaningful.

use crate::ir::{Cell, CellOp, Def, Netlist};
use crate::level::{levelize, levels, logic_depth};

/// Estimated resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaEstimate {
    /// Logic elements (LUT+FF pairs).
    pub logic_elements: u64,
    /// Dedicated register bits.
    pub registers: u64,
    /// Block RAM bits.
    pub bram_bits: u64,
    /// DSP multiplier blocks.
    pub dsp_blocks: u64,
}

impl AreaEstimate {
    /// A single scalar for fit checks: logic elements plus register packing.
    pub fn cells(&self) -> u64 {
        self.logic_elements.max(self.registers)
    }
}

/// Estimated timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingEstimate {
    /// Longest combinational path, in cell levels.
    pub logic_depth: u32,
    /// Estimated maximum clock frequency in MHz.
    pub fmax_mhz: f64,
}

/// Estimates the resources a netlist occupies.
pub fn estimate_area(nl: &Netlist) -> AreaEstimate {
    let mut le: u64 = 0;
    let mut dsp: u64 = 0;
    for net in &nl.nets {
        if let Def::Cell(cell) = &net.def {
            let (l, d) = cell_cost(cell, net.width, nl);
            le += l;
            dsp += d;
        }
    }
    let registers: u64 = nl.regs.iter().map(|r| nl.width(r.q) as u64).sum();
    let bram_bits: u64 = nl.mems.iter().map(|m| m.width as u64 * m.words).sum();
    // Each memory write port costs address decode logic.
    le += nl
        .mems
        .iter()
        .map(|m| m.write_ports.len() as u64 * (m.width as u64 / 4 + 4))
        .sum::<u64>();
    // Task cells cost trigger plumbing.
    le += nl.tasks.len() as u64 * 8;
    AreaEstimate {
        logic_elements: le,
        registers,
        bram_bits,
        dsp_blocks: dsp,
    }
}

/// Per-cell LE/DSP cost model.
fn cell_cost(cell: &Cell, width: u32, nl: &Netlist) -> (u64, u64) {
    let w = width as u64;
    match cell.op {
        CellOp::Not | CellOp::And | CellOp::Or | CellOp::Xor | CellOp::Xnor => (w.div_ceil(2), 0),
        CellOp::Neg | CellOp::Add | CellOp::Sub => (w, 0),
        CellOp::Mul => {
            let in_w = nl.width(cell.inputs[0]) as u64;
            // 18x18 DSP blocks; wider multiplies decompose.
            (w / 4, (in_w.div_ceil(18)).pow(2))
        }
        CellOp::DivU | CellOp::DivS | CellOp::RemU | CellOp::RemS => (w * w / 2, 0),
        CellOp::RedAnd | CellOp::RedOr | CellOp::RedXor => {
            (nl.width(cell.inputs[0]) as u64 / 4 + 1, 0)
        }
        CellOp::LogNot => (1, 0),
        CellOp::Shl | CellOp::Shr | CellOp::AShr | CellOp::DynSlice => {
            // Barrel shifter: w * log2(w) muxes.
            let stages = (64 - w.leading_zeros()) as u64;
            (w * stages / 2, 0)
        }
        CellOp::Eq | CellOp::Ne | CellOp::LtU | CellOp::LtS | CellOp::LeU | CellOp::LeS => {
            (nl.width(cell.inputs[0]) as u64 / 2 + 1, 0)
        }
        CellOp::Mux => (w, 0),
        // Pure wiring.
        CellOp::Concat
        | CellOp::Slice { .. }
        | CellOp::ZExt
        | CellOp::SExt
        | CellOp::Repeat { .. } => (0, 0),
    }
}

/// Propagation delay of one cell in nanoseconds. Wide arithmetic is slower
/// than its single-cell netlist representation suggests: a w-bit divider is
/// an O(w) array of subtract-shift stages, an adder a carry chain, a shift
/// a log-depth barrel.
pub fn cell_delay_ns(cell: &Cell, width: u32, nl: &Netlist) -> f64 {
    let w = width.max(1) as f64;
    let in_w = cell
        .inputs
        .first()
        .map(|&i| nl.width(i))
        .unwrap_or(1)
        .max(1) as f64;
    match cell.op {
        CellOp::Not | CellOp::LogNot => 0.25,
        CellOp::And | CellOp::Or | CellOp::Xor | CellOp::Xnor | CellOp::Mux => 0.3,
        // Hardened carry chains make wide adds cheap on FPGAs.
        CellOp::Neg | CellOp::Add | CellOp::Sub => 0.3 + 0.016 * w,
        CellOp::Eq | CellOp::Ne | CellOp::LtU | CellOp::LtS | CellOp::LeU | CellOp::LeS => {
            0.35 + 0.015 * in_w
        }
        CellOp::Mul => 1.0 + 0.5 * in_w.log2(),
        CellOp::DivU | CellOp::DivS | CellOp::RemU | CellOp::RemS => 1.0 + 0.45 * in_w,
        CellOp::Shl | CellOp::Shr | CellOp::AShr | CellOp::DynSlice => 0.35 + 0.3 * w.log2(),
        CellOp::RedAnd | CellOp::RedOr | CellOp::RedXor => 0.25 + 0.25 * in_w.log2(),
        CellOp::Concat
        | CellOp::Slice { .. }
        | CellOp::ZExt
        | CellOp::SExt
        | CellOp::Repeat { .. } => 0.0,
    }
}

/// The delay-weighted critical path through the combinational network, in
/// nanoseconds (excluding routing, which the toolchain adds from placement).
pub fn critical_path_ns(nl: &Netlist, order: &[crate::NetId]) -> f64 {
    let mut arrival = vec![0.0f64; nl.nets.len()];
    let mut max = 0.0f64;
    for &net in order {
        let t = match &nl.nets[net.0 as usize].def {
            Def::Cell(cell) => {
                let inputs_max = cell
                    .inputs
                    .iter()
                    .map(|i| arrival[i.0 as usize])
                    .fold(0.0, f64::max);
                inputs_max + cell_delay_ns(cell, nl.width(net), nl)
            }
            Def::MemRead { addr, .. } => arrival[addr.0 as usize] + 1.5,
            _ => 0.0,
        };
        arrival[net.0 as usize] = t;
        max = max.max(t);
    }
    max
}

/// Cells per combinational level (index 0 = cells fed only by sources).
///
/// The shape of this histogram predicts how much the compiled evaluator's
/// activity-driven scheduling helps: wide shallow netlists re-evaluate only
/// the few levels downstream of whatever changed, while a single deep chain
/// re-evaluates everything on any change.
pub fn level_population(nl: &Netlist, order: &[crate::NetId]) -> Vec<u32> {
    let (level, depth) = levels(nl, order);
    let mut pop = vec![0u32; depth as usize];
    for &net in order {
        let l = level[net.0 as usize].saturating_sub(1) as usize;
        if l < pop.len() {
            pop[l] += 1;
        }
    }
    pop
}

/// Estimates the post-place-and-route clock rate.
///
/// The model: the delay-weighted critical path plus a fixed 2 ns of clock
/// network and register overhead. A combinationally cyclic netlist yields
/// depth 0 here only if levelization failed upstream.
pub fn estimate_timing(nl: &Netlist) -> TimingEstimate {
    let (depth, path_ns) = match levelize(nl) {
        Ok(order) => (logic_depth(nl, &order), critical_path_ns(nl, &order)),
        Err(_) => (0, 0.0),
    };
    let ns = 2.0 + path_ns;
    TimingEstimate {
        logic_depth: depth,
        fmax_mhz: 1000.0 / ns,
    }
}
