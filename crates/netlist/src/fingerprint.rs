//! Stable structural fingerprinting of netlists.
//!
//! The background compiler keys its bitstream cache on this hash: two
//! textually different programs that synthesize to the same netlist share a
//! cache entry, and re-eval'ing an unchanged design never pays the modeled
//! multi-minute toolchain latency twice (the SYNERGY approach to
//! compilation caching).
//!
//! The hash is FNV-1a over a canonical byte walk of the structure — NOT
//! `std::hash::Hash`, whose SipHash keys are randomized per process and so
//! useless as a persistent/stable cache key.

use crate::ir::{Cell, CellOp, Def, Netlist, TaskKind};
use cascade_bits::Bits;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An FNV-1a accumulator with helpers for the shapes the netlist contains.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn opt_str(&mut self, s: &Option<String>) {
        match s {
            None => self.byte(0),
            Some(s) => {
                self.byte(1);
                self.str(s);
            }
        }
    }

    fn bits(&mut self, b: &Bits) {
        self.u32(b.width());
        for w in b.words() {
            self.u64(*w);
        }
    }
}

/// Returns a stable 64-bit structural hash of `nl`: identical across
/// processes and runs, sensitive to every field that affects compilation
/// (definitions, widths, state, tasks, port order).
pub fn fingerprint(nl: &Netlist) -> u64 {
    let mut h = Fnv::new();
    h.str(&nl.name);
    h.u64(nl.nets.len() as u64);
    for net in &nl.nets {
        h.u32(net.width);
        // Net names matter: ports and probes are addressed by name.
        h.opt_str(&net.name);
        match &net.def {
            Def::Input => h.byte(1),
            Def::Undriven => h.byte(2),
            Def::Const(b) => {
                h.byte(3);
                h.bits(b);
            }
            Def::Cell(c) => {
                h.byte(4);
                cell(&mut h, c);
            }
            Def::Reg(r) => {
                h.byte(5);
                h.u32(r.0);
            }
            Def::MemRead { mem, addr } => {
                h.byte(6);
                h.u32(mem.0);
                h.u32(addr.0);
            }
        }
    }
    h.u64(nl.regs.len() as u64);
    for r in &nl.regs {
        h.u32(r.q.0);
        h.u32(r.d.0);
        h.u32(r.clock.0);
        h.bits(&r.init);
        h.opt_str(&r.name);
    }
    h.u64(nl.mems.len() as u64);
    for m in &nl.mems {
        h.u32(m.width);
        h.u64(m.words);
        h.opt_str(&m.name);
        h.u64(m.write_ports.len() as u64);
        for wp in &m.write_ports {
            h.u32(wp.clock.0);
            h.u32(wp.enable.0);
            h.u32(wp.addr.0);
            h.u32(wp.data.0);
        }
    }
    h.u64(nl.tasks.len() as u64);
    for t in &nl.tasks {
        h.byte(match t.kind {
            TaskKind::Display => 0,
            TaskKind::Write => 1,
            TaskKind::Finish => 2,
            TaskKind::Fatal => 3,
        });
        h.u32(t.clock.0);
        h.u32(t.trigger.0);
        match &t.format {
            None => h.byte(0),
            Some(f) => {
                h.byte(1);
                h.str(f);
            }
        }
        h.u64(t.args.len() as u64);
        for a in &t.args {
            h.u32(a.0);
        }
        for s in &t.arg_signed {
            h.byte(*s as u8);
        }
    }
    h.u64(nl.clocks.len() as u64);
    for (net, edge) in &nl.clocks {
        h.u32(net.0);
        h.byte(*edge as u8);
    }
    h.u64(nl.inputs.len() as u64);
    for i in &nl.inputs {
        h.u32(i.0);
    }
    h.u64(nl.outputs.len() as u64);
    for (name, net) in &nl.outputs {
        h.str(name);
        h.u32(net.0);
    }
    h.0
}

/// The modeled configuration-readback CRC for a programmed fabric.
///
/// A real FPGA's scrubber reads the configuration frames back and compares
/// their CRC against the golden programming-time image; here the netlist's
/// structural fingerprint stands in for the frame CRC, and `upset_mask`
/// accumulates the configuration disturbance from injected single-event
/// upsets. An undisturbed fabric (`upset_mask == 0`) reads back exactly
/// [`fingerprint`]`(nl)`; any upset makes the CRC mismatch the golden
/// value, which is precisely the detection signal scrubbing relies on.
pub fn readback_crc(nl: &Netlist, upset_mask: u64) -> u64 {
    fingerprint(nl) ^ upset_mask
}

fn cell(h: &mut Fnv, c: &Cell) {
    h.byte(match c.op {
        CellOp::Not => 0,
        CellOp::Neg => 1,
        CellOp::RedAnd => 2,
        CellOp::RedOr => 3,
        CellOp::RedXor => 4,
        CellOp::LogNot => 5,
        CellOp::Add => 6,
        CellOp::Sub => 7,
        CellOp::Mul => 8,
        CellOp::DivU => 9,
        CellOp::DivS => 10,
        CellOp::RemU => 11,
        CellOp::RemS => 12,
        CellOp::And => 13,
        CellOp::Or => 14,
        CellOp::Xor => 15,
        CellOp::Xnor => 16,
        CellOp::Shl => 17,
        CellOp::Shr => 18,
        CellOp::AShr => 19,
        CellOp::Eq => 20,
        CellOp::Ne => 21,
        CellOp::LtU => 22,
        CellOp::LtS => 23,
        CellOp::LeU => 24,
        CellOp::LeS => 25,
        CellOp::Mux => 26,
        CellOp::Concat => 27,
        CellOp::Slice { .. } => 28,
        CellOp::DynSlice => 29,
        CellOp::ZExt => 30,
        CellOp::SExt => 31,
        CellOp::Repeat { .. } => 32,
    });
    match c.op {
        CellOp::Slice { offset } => h.u32(offset),
        CellOp::Repeat { count } => h.u32(count),
        _ => {}
    }
    h.u64(c.inputs.len() as u64);
    for i in &c.inputs {
        h.u32(i.0);
    }
}
