//! Post-synthesis netlist optimizations.
//!
//! The symbolic executor lowers `case` statements into linear mux chains;
//! real synthesis tools recognize the parallel-case pattern and emit a
//! balanced decision tree (a LUT ROM), which is the difference between a
//! 64-level critical path and a 6-level one. `balance_case_chains` performs
//! that rewrite; `prune_dead` then drops cells no longer reachable from any
//! architectural root so area estimates reflect the optimized design.

use crate::ir::{Cell, CellOp, ClockId, Def, NetId, Netlist};
use cascade_bits::Bits;
use std::collections::BTreeMap;

/// Runs the standard optimization pipeline in place.
pub fn optimize(nl: &mut Netlist) {
    balance_case_chains(nl);
    prune_dead(nl);
}

/// Merges clock domains whose clock nets are aliases of the same root.
///
/// Hierarchy flattening wires a submodule's `clk` port to the parent's
/// clock through an identity cell, so `always @(posedge clk)` blocks on
/// the two sides of the instance boundary land in *different* domains of
/// the same physical clock. Every execution engine steps one domain per
/// edge (`step_clock(0)` in the MMIO `Latch` path, `run_cycles`, the
/// batch/parallel evaluators), which silently froze the other half of the
/// design. Resolving each domain's net through width-preserving identity
/// chains (`ZExt`/`SExt`/`Slice@0` of an equal-width input) and merging
/// equal `(root, edge)` pairs restores the single-domain semantics the
/// event-driven simulator exhibits. Found by differential fuzzing.
pub fn dedupe_clocks(nl: &mut Netlist) {
    if nl.clocks.len() <= 1 {
        return;
    }
    let resolve = |nets: &[crate::ir::NetInfo], mut n: NetId| -> NetId {
        loop {
            let info = &nets[n.0 as usize];
            let Def::Cell(cell) = &info.def else {
                return n;
            };
            let passthrough = matches!(
                cell.op,
                CellOp::ZExt | CellOp::SExt | CellOp::Slice { offset: 0 }
            );
            if !passthrough
                || cell.inputs.len() != 1
                || nets[cell.inputs[0].0 as usize].width != info.width
            {
                return n;
            }
            n = cell.inputs[0];
        }
    };
    let mut canon: Vec<(NetId, cascade_verilog::ast::Edge)> = Vec::new();
    let mut remap: Vec<ClockId> = Vec::with_capacity(nl.clocks.len());
    for &(net, edge) in &nl.clocks {
        let root = resolve(&nl.nets, net);
        match canon.iter().position(|&(n, e)| n == root && e == edge) {
            Some(at) => remap.push(ClockId(at as u32)),
            None => {
                canon.push((root, edge));
                remap.push(ClockId(canon.len() as u32 - 1));
            }
        }
    }
    if canon.len() == nl.clocks.len() {
        return;
    }
    nl.clocks = canon;
    for r in &mut nl.regs {
        r.clock = remap[r.clock.0 as usize];
    }
    for m in &mut nl.mems {
        for wp in &mut m.write_ports {
            wp.clock = remap[wp.clock.0 as usize];
        }
    }
    for t in &mut nl.tasks {
        t.clock = remap[t.clock.0 as usize];
    }
}

/// Constant-folds cells whose inputs are all constants, in place. The
/// synthesizer folds during construction; this post-hoc pass exists for
/// rewrites that introduce new constants afterwards (specialization).
pub fn const_fold(nl: &mut Netlist) {
    // Topological order guarantees inputs fold before their users.
    let Ok(order) = crate::level::levelize(nl) else {
        return;
    };
    for net in order {
        let i = net.0 as usize;
        // Muxes with constant selectors collapse to one arm even when the
        // arms are not constants.
        if let Def::Cell(cell) = &nl.nets[i].def {
            if cell.op == CellOp::Mux {
                if let Def::Const(sel) = &nl.nets[cell.inputs[0].0 as usize].def {
                    let arm = if sel.to_bool() {
                        cell.inputs[1]
                    } else {
                        cell.inputs[2]
                    };
                    nl.nets[i].def = Def::Cell(Cell {
                        op: CellOp::ZExt,
                        inputs: vec![arm],
                    });
                }
            }
        }
        let (value, width) = match &nl.nets[i].def {
            Def::Cell(cell) => {
                let consts: Option<Vec<Bits>> = cell
                    .inputs
                    .iter()
                    .map(|inp| match &nl.nets[inp.0 as usize].def {
                        Def::Const(c) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                match consts {
                    Some(cs) => {
                        let w = nl.nets[i].width;
                        (crate::eval::eval_cell(cell.op, &cs, w), w)
                    }
                    None => continue,
                }
            }
            _ => continue,
        };
        nl.nets[i].def = Def::Const(value.resize(width));
    }
}

/// The paper's future-work "dynamic optimization" (Sec. 9): specializes a
/// netlist to input values observed at runtime. Each `(input net, value)`
/// pin becomes a constant; folding and pruning then shrink the design —
/// the JIT could compile this smaller, faster bitstream in the background
/// and fall back to the general one when the pinned input changes.
pub fn specialize(nl: &Netlist, pins: &[(NetId, Bits)]) -> Netlist {
    let mut out = nl.clone();
    for (net, value) in pins {
        let i = net.0 as usize;
        if matches!(out.nets[i].def, Def::Input) {
            let w = out.nets[i].width;
            out.nets[i].def = Def::Const(value.resize(w));
        }
        out.inputs.retain(|inp| inp != net);
    }
    const_fold(&mut out);
    prune_dead(&mut out);
    out
}

/// One detected chain link: `Mux(Eq(scr, const), value, next)`.
struct Link {
    constant: Bits,
    value: NetId,
}

/// Rewrites linear `case` mux chains over a common scrutinee into balanced
/// binary decision trees. Chains shorter than 8 links are left alone (the
/// linear form is fine at that depth).
pub fn balance_case_chains(nl: &mut Netlist) {
    let n = nl.nets.len();
    for net in 0..n {
        let id = NetId(net as u32);
        let Some((scr, links, default)) = detect_chain(nl, id) else {
            continue;
        };
        if links.len() < 8 {
            continue;
        }
        // Deduplicate constants, keeping the first occurrence (the linear
        // chain gives priority to earlier arms).
        let mut seen = BTreeMap::new();
        for link in links {
            seen.entry(link.constant.to_u64()).or_insert(link);
        }
        let mut entries: Vec<Link> = seen.into_values().collect();
        entries.sort_by_key(|l| l.constant.to_u64());
        let width = nl.width(id);
        let tree = build_tree(nl, scr, &entries, default, width);
        // Redirect the chain head to the tree root via an identity cell.
        nl.nets[net].def = Def::Cell(Cell {
            op: CellOp::ZExt,
            inputs: vec![tree],
        });
    }
}

/// Follows a mux chain from `head`. Returns `(scrutinee, links, default)`.
fn detect_chain(nl: &Netlist, head: NetId) -> Option<(NetId, Vec<Link>, NetId)> {
    let mut links = Vec::new();
    let mut cur = head;
    let mut scr: Option<NetId> = None;
    while let Def::Cell(cell) = &nl.nets[cur.0 as usize].def {
        if cell.op != CellOp::Mux {
            break;
        }
        let (sel, value, next) = (cell.inputs[0], cell.inputs[1], cell.inputs[2]);
        let Def::Cell(sel_cell) = &nl.nets[sel.0 as usize].def else {
            break;
        };
        if sel_cell.op != CellOp::Eq {
            break;
        }
        let (a, b) = (sel_cell.inputs[0], sel_cell.inputs[1]);
        // One side must be a constant; the other is the scrutinee.
        let (s, c) = match (&nl.nets[a.0 as usize].def, &nl.nets[b.0 as usize].def) {
            (_, Def::Const(c)) => (a, c.clone()),
            (Def::Const(c), _) => (b, c.clone()),
            _ => break,
        };
        match scr {
            None => scr = Some(s),
            Some(prev) if prev == s => {}
            Some(_) => break,
        }
        links.push(Link { constant: c, value });
        cur = next;
    }
    let scr = scr?;
    if links.is_empty() {
        return None;
    }
    Some((scr, links, cur))
}

/// Builds a balanced decision tree over sorted entries.
fn build_tree(nl: &mut Netlist, scr: NetId, entries: &[Link], default: NetId, width: u32) -> NetId {
    match entries.len() {
        0 => default,
        1 => {
            let c = push_const(nl, entries[0].constant.resize(nl.width(scr)));
            let eq = push_cell(nl, CellOp::Eq, vec![scr, c], 1);
            push_cell(nl, CellOp::Mux, vec![eq, entries[0].value, default], width)
        }
        n => {
            let mid = n / 2;
            let pivot = push_const(nl, entries[mid].constant.resize(nl.width(scr)));
            let lt = push_cell(nl, CellOp::LtU, vec![scr, pivot], 1);
            let left = build_tree(nl, scr, &entries[..mid], default, width);
            let right = build_tree(nl, scr, &entries[mid..], default, width);
            push_cell(nl, CellOp::Mux, vec![lt, left, right], width)
        }
    }
}

fn push_const(nl: &mut Netlist, value: Bits) -> NetId {
    let id = NetId(nl.nets.len() as u32);
    nl.nets.push(crate::ir::NetInfo {
        width: value.width(),
        name: None,
        def: Def::Const(value),
    });
    id
}

fn push_cell(nl: &mut Netlist, op: CellOp, inputs: Vec<NetId>, width: u32) -> NetId {
    let id = NetId(nl.nets.len() as u32);
    nl.nets.push(crate::ir::NetInfo {
        width,
        name: None,
        def: Def::Cell(Cell { op, inputs }),
    });
    id
}

/// Marks cells unreachable from any architectural root (outputs, register
/// inputs, memory ports, task cells) as [`Def::Undriven`], removing them
/// from area, timing, and evaluation.
pub fn prune_dead(nl: &mut Netlist) {
    let mut live = vec![false; nl.nets.len()];
    let mut stack: Vec<NetId> = Vec::new();
    let root = |stack: &mut Vec<NetId>, id: NetId| stack.push(id);
    for (_, out) in &nl.outputs {
        root(&mut stack, *out);
    }
    for reg in &nl.regs {
        root(&mut stack, reg.d);
        root(&mut stack, reg.q);
    }
    for mem in &nl.mems {
        for port in &mem.write_ports {
            root(&mut stack, port.enable);
            root(&mut stack, port.addr);
            root(&mut stack, port.data);
        }
    }
    for task in &nl.tasks {
        root(&mut stack, task.trigger);
        for a in &task.args {
            root(&mut stack, *a);
        }
    }
    for &(clk, _) in &nl.clocks {
        root(&mut stack, clk);
    }
    for &input in &nl.inputs {
        root(&mut stack, input);
    }
    while let Some(id) = stack.pop() {
        if live[id.0 as usize] {
            continue;
        }
        live[id.0 as usize] = true;
        match &nl.nets[id.0 as usize].def {
            Def::Cell(cell) => {
                for i in &cell.inputs {
                    if !live[i.0 as usize] {
                        stack.push(*i);
                    }
                }
            }
            Def::MemRead { addr, .. } if !live[addr.0 as usize] => {
                stack.push(*addr);
            }
            _ => {}
        }
    }
    for (i, net) in nl.nets.iter_mut().enumerate() {
        if !live[i] && matches!(net.def, Def::Cell(_)) {
            net.def = Def::Undriven;
        }
    }
}
