//! Level-parallel evaluation: a persistent worker pool that splits wide
//! combinational levels into contiguous instruction chunks.
//!
//! Instructions within a level are independent by construction — every
//! operand comes from a strictly lower level and every destination slot is
//! owned by exactly one instruction — so a level can be executed by any
//! number of threads with no locking, provided all of the previous level
//! finished first. The pool therefore only parallelizes *dense* settles
//! (the straight-line schedule with no dirty bookkeeping): sparse settles
//! are narrow by definition, and staying single-threaded on them *is* the
//! activity cutover.
//!
//! Which levels engage the pool is decided per evaluator by a
//! [`ParCtl`] policy: statically from the level's instruction count (and
//! batch lane count), then periodically refined from the profiling
//! histograms when they are enabled, so a level that the dirty scheduler
//! rarely fills stays on the single-threaded path even if it is wide on
//! paper.

use crate::exec::{exec_lanes, NlProfileState, Program};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Minimum per-thread work (instructions × lanes) for a level to be worth
/// crossing a barrier for. Below this, dispatch overhead dominates.
const PAR_MIN_CHUNK_WORK: u64 = 96;

/// How many dense runs between policy refinements from the histograms.
const REFINE_INTERVAL: u64 = 512;

/// A centralized sense-reversing barrier: spin briefly, then yield (the
/// pool must degrade gracefully on machines with fewer cores than
/// participants).
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Reset before the generation bump: stragglers only enter the
            // next round after observing the bump.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins >= 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// One dense pass handed to the pool: raw views of the program and the
/// (possibly lane-widened) arenas. Validity is scoped to one
/// [`EvalPool::run`] call — the final barrier keeps every worker inside
/// that window.
#[derive(Clone, Copy)]
struct DenseJob {
    prog: *const Program,
    arena: *mut u64,
    mem: *const u64,
    lanes: usize,
    par_level: *const bool,
}

// SAFETY: the raw pointers are only dereferenced between job publication
// and the job's final barrier, while `EvalPool::run` holds the borrows
// they were derived from. Chunks write disjoint destination slots.
unsafe impl Send for DenseJob {}

struct JobCell {
    seq: u64,
    job: Option<DenseJob>,
    shutdown: bool,
}

struct PoolShared {
    cell: Mutex<JobCell>,
    cv: Condvar,
    barrier: SpinBarrier,
    threads: usize,
}

/// A persistent worker pool for dense settles. One pool serves one
/// evaluator at a time (`run` is internally serialized); clones of an
/// evaluator share the pool through an [`Arc`].
pub(crate) struct EvalPool {
    shared: Arc<PoolShared>,
    /// Serializes dense passes from cloned evaluators sharing this pool.
    run_lock: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("threads", &self.shared.threads)
            .finish()
    }
}

impl EvalPool {
    /// Spawns a pool of `threads` total participants (the calling thread
    /// plus `threads - 1` workers). `threads` must be at least 2.
    pub fn new(threads: usize) -> EvalPool {
        let threads = threads.max(2);
        let shared = Arc::new(PoolShared {
            cell: Mutex::new(JobCell {
                seq: 0,
                job: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
            barrier: SpinBarrier::new(threads),
            threads,
        });
        let workers = (1..threads)
            .map(|tid| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nl-eval-{tid}"))
                    .spawn(move || worker_loop(&s, tid))
                    .expect("spawn eval worker")
            })
            .collect();
        EvalPool {
            shared,
            run_lock: Mutex::new(()),
            workers,
        }
    }

    /// Total participants, including the caller of [`run`](EvalPool::run).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Executes one dense pass over every level, splitting the levels
    /// flagged in `par_level` across all participants. Returns after every
    /// participant has finished (the caller executes chunks too).
    ///
    /// `arena` holds `lanes` consecutive words per program arena word
    /// (lane-major); `lanes == 1` is the ordinary scalar arena.
    pub fn run(&self, prog: &Program, arena: &mut [u64], mem: &[u64], lanes: usize, par: &[bool]) {
        let _serialize = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        let job = DenseJob {
            prog,
            arena: arena.as_mut_ptr(),
            mem: mem.as_ptr(),
            lanes,
            par_level: par.as_ptr(),
        };
        {
            let mut cell = self.shared.cell.lock().unwrap_or_else(|e| e.into_inner());
            cell.job = Some(job);
            cell.seq += 1;
            self.shared.cv.notify_all();
        }
        // SAFETY: the borrows backing the job outlive this call, and the
        // job's final barrier keeps every worker inside it.
        unsafe { run_dense(&job, 0, self.shared.threads, &self.shared.barrier) };
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        {
            let mut cell = self.shared.cell.lock().unwrap_or_else(|e| e.into_inner());
            cell.shutdown = true;
            self.shared.cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, tid: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut cell = shared.cell.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if cell.shutdown {
                    return;
                }
                if cell.seq != seen {
                    seen = cell.seq;
                    break cell.job.expect("job published with seq bump");
                }
                cell = shared.cv.wait(cell).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: the publisher blocks inside `run` until the final
        // barrier, so the job's pointers are valid for this whole pass.
        unsafe { run_dense(&job, tid, shared.threads, &shared.barrier) };
    }
}

/// One participant's walk over the levels. Parallel levels are split into
/// contiguous chunks and fenced with barriers; serial stretches run on
/// participant 0 alone, with one barrier before the next parallel level so
/// no chunk reads a value the serial stretch has not produced yet.
unsafe fn run_dense(job: &DenseJob, tid: usize, total: usize, barrier: &SpinBarrier) {
    let prog = &*job.prog;
    let mut pending_serial = false;
    for (l, &(start, end)) in prog.level_ranges.iter().enumerate() {
        if start == end {
            continue;
        }
        if *job.par_level.add(l) {
            if pending_serial {
                barrier.wait();
                pending_serial = false;
            }
            let n = (end - start) as usize;
            let chunk = n.div_ceil(total);
            let lo = (start as usize + tid * chunk).min(end as usize);
            let hi = (lo + chunk).min(end as usize);
            for i in lo..hi {
                exec_lanes(prog, job.arena, job.mem, job.lanes, i as u32);
            }
            barrier.wait();
        } else {
            if tid == 0 {
                for i in start..end {
                    exec_lanes(prog, job.arena, job.mem, job.lanes, i);
                }
            }
            pending_serial = true;
        }
    }
    // Exit barrier: the publisher must not return (and release the job's
    // borrows) while any worker is still inside the pass.
    barrier.wait();
}

/// Per-evaluator parallel policy: the pool handle plus the set of levels
/// worth splitting, refined from the activity histograms when available.
#[derive(Debug, Clone)]
pub(crate) struct ParCtl {
    pub pool: Arc<EvalPool>,
    pub par_level: Vec<bool>,
    pub any_par: bool,
    /// Lane count of the owning evaluator (1 for the scalar engine).
    lanes: u64,
    /// Dense passes since construction (drives periodic refinement).
    dense_runs: u64,
}

impl ParCtl {
    pub fn new(prog: &Program, pool: Arc<EvalPool>, lanes: u32) -> ParCtl {
        let lanes = lanes.max(1) as u64;
        let mut ctl = ParCtl {
            pool,
            par_level: vec![false; prog.num_levels as usize],
            any_par: false,
            lanes,
            dense_runs: 0,
        };
        ctl.compute(prog, None);
        ctl
    }

    /// Recomputes the per-level flags. With a profile, a level's observed
    /// activity (mean executed instructions per settle) replaces its
    /// static width, so levels the dirty scheduler rarely fills drop back
    /// to the single-threaded path.
    ///
    /// `CASCADE_NETLIST_FORCE_PAR=1` flags every non-empty level
    /// regardless of the work heuristic — a testing knob that lets the
    /// equivalence suites drive the concurrent path on designs far too
    /// small to clear the cutover naturally.
    fn compute(&mut self, prog: &Program, profile: Option<&NlProfileState>) {
        let force = std::env::var("CASCADE_NETLIST_FORCE_PAR").as_deref() == Ok("1");
        let threads = self.pool.threads() as u64;
        let min_level_work = threads * PAR_MIN_CHUNK_WORK;
        self.any_par = false;
        for (l, &(start, end)) in prog.level_ranges.iter().enumerate() {
            let width = (end - start) as u64;
            let activity = match profile {
                Some(p) if p.settles > 0 => width.min(p.level_execs[l] / p.settles),
                _ => width,
            };
            let on =
                force && width > 0 || activity * self.lanes >= min_level_work && width >= threads;
            self.par_level[l] = on;
            self.any_par |= on;
        }
    }

    /// Called once per dense pass; periodically re-derives the flags from
    /// the histograms (no-op while profiling is off).
    pub fn tick(&mut self, prog: &Program, profile: Option<&NlProfileState>) {
        self.dense_runs += 1;
        if profile.is_some() && self.dense_runs.is_multiple_of(REFINE_INTERVAL) {
            self.compute(prog, profile);
        }
    }
}
