//! Synthesis: an elaborated [`Design`] → word-level [`Netlist`].
//!
//! Clocked `always` blocks are symbolically executed into next-state mux
//! trees; combinational blocks into expression DAGs (with latch detection);
//! system tasks survive as trigger cells. The builder hash-conses cells and
//! constant-folds as it goes, so common-subexpression elimination and
//! constant propagation fall out of construction.

use crate::eval::eval_cell;
use crate::ir::*;
use cascade_bits::Bits;
use cascade_sim::{Design, RCaseLabel, RExpr, RExprKind, RLValue, RStmt, RTaskArg, VarId};
use cascade_verilog::ast::{BinaryOp, CaseKind, Edge, SystemTask, UnaryOp};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Accumulated partial drivers for one variable:
/// `(dynamic offset net, width, value net)`.
type PartialDrivers =
    std::collections::BTreeMap<cascade_sim::VarId, Vec<(Option<NetId>, u32, NetId)>>;

/// A task accumulated during symbolic execution:
/// `(kind, trigger, format, args, arg signedness)`.
type PendingTask = (TaskKind, NetId, Option<String>, Vec<NetId>, Vec<bool>);

/// A synthesis failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthError {
    message: String,
}

impl SynthError {
    fn new(message: impl Into<String>) -> Self {
        SynthError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "synthesis error: {}", self.message)
    }
}

impl Error for SynthError {}

/// Maximum loop-unroll iterations.
const UNROLL_LIMIT: u32 = 100_000;

/// Synthesizes a flat design into a netlist.
///
/// # Errors
///
/// Returns [`SynthError`] for unsynthesizable constructs: `initial` blocks
/// with statements, `$time`/`$random`, inferred latches, non-static loops,
/// multiple drivers, multi-clock registers, or system tasks outside clocked
/// blocks.
pub fn synthesize(design: &Design) -> Result<Netlist, SynthError> {
    let mut nl = synthesize_raw(design)?;
    crate::opt::optimize(&mut nl);
    Ok(nl)
}

/// [`synthesize`] without the post-synthesis optimization pipeline.
///
/// The raw netlist is what the optimizer consumes; keeping it reachable
/// lets the equivalence checker (`cascade-verify`) prove the optimized
/// netlist against it rather than trusting the passes.
pub fn synthesize_raw(design: &Design) -> Result<Netlist, SynthError> {
    Synth::new(design).run()
}

struct Synth<'a> {
    design: &'a Design,
    nl: Netlist,
    cell_cache: HashMap<(Cell, u32), NetId>,
    const_cache: HashMap<Bits, NetId>,
    /// var → its current-value net.
    var_nets: Vec<Option<NetId>>,
    /// var → memory.
    var_mems: Vec<Option<MemId>>,
    clock_ids: HashMap<(VarId, Edge), ClockId>,
}

/// A symbolic value: a net plus whether it is defined on every path so far
/// (combinational latch detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SVal {
    net: NetId,
    defined: bool,
}

/// Symbolic-execution context for one procedural block.
struct BlockCtx {
    /// Current (blocking) values; falls back to the var's net.
    env: BTreeMap<VarId, SVal>,
    /// Accumulated next-state (nonblocking) values.
    next: BTreeMap<VarId, SVal>,
    /// Memory write operations accumulated with their conditions.
    mem_writes: Vec<(MemId, NetId, NetId, NetId)>, // (mem, enable, addr, data)
    /// Task cells with their conditions.
    tasks: Vec<PendingTask>,
    /// Whether this block is combinational (latch rules apply).
    comb: bool,
    /// Vars written anywhere in this block (for latch detection).
    written: Vec<VarId>,
}

impl<'a> Synth<'a> {
    fn new(design: &'a Design) -> Self {
        Synth {
            design,
            nl: Netlist {
                name: design.top.clone(),
                ..Netlist::default()
            },
            cell_cache: HashMap::new(),
            const_cache: HashMap::new(),
            var_nets: vec![None; design.vars.len()],
            var_mems: vec![None; design.vars.len()],
            clock_ids: HashMap::new(),
        }
    }

    fn run(mut self) -> Result<Netlist, SynthError> {
        self.classify()?;
        // Continuous assignments and procedural blocks.
        let mut comb_drivers = PartialDrivers::new();
        for p in &self.design.processes {
            match p {
                cascade_sim::Process::Assign { lhs, rhs } => {
                    let width = lhs.width(&self.design.vars);
                    let value = self.build(rhs, width, None)?;
                    self.cont_assign(lhs, value, &mut comb_drivers)?;
                }
                cascade_sim::Process::Always { sens, body } => {
                    self.always_block(sens, body, &mut comb_drivers)?;
                }
                cascade_sim::Process::Initial { body } => {
                    if !matches!(body, RStmt::Null) && !is_empty_block(body) {
                        return Err(SynthError::new(
                            "initial blocks are unsynthesizable (state initializers are supported)",
                        ));
                    }
                }
            }
        }
        // Resolve partial drivers and patch var nets.
        for (var, pieces) in comb_drivers {
            let width = self.design.vars[var.0 as usize].width;
            let mut acc = self.const_net(Bits::zero(width));
            for (offset, w, value) in pieces {
                acc = match offset {
                    None => value,
                    Some(off) => self.splice_dyn(acc, off, w, value),
                };
            }
            self.patch_var(var, acc)?;
        }
        // Outputs.
        for (i, info) in self.design.vars.iter().enumerate() {
            if info.is_output {
                let net = self.var_net(VarId(i as u32));
                self.nl.outputs.push((info.name.clone(), net));
            }
        }
        self.check_drivers()?;
        let mut nl = self.nl;
        crate::opt::dedupe_clocks(&mut nl);
        Ok(nl)
    }

    /// Creates nets/registers/memories for every variable.
    fn classify(&mut self) -> Result<(), SynthError> {
        // Which vars are written in clocked blocks?
        let mut clocked_writes: Vec<Option<ClockId>> = vec![None; self.design.vars.len()];
        for p in &self.design.processes {
            if let cascade_sim::Process::Always { sens, body } = p {
                let edges: Vec<_> = sens.iter().filter(|s| s.edge.is_some()).collect();
                if edges.is_empty() {
                    continue;
                }
                if edges.len() != sens.len() || edges.len() != 1 {
                    return Err(SynthError::new(
                        "synthesis supports exactly one clock edge per always block \
                         (no async resets or mixed sensitivity)",
                    ));
                }
                let clock = self.clock_id(edges[0].var, edges[0].edge.expect("edge"));
                let mut writes = Vec::new();
                collect_writes(body, &mut writes);
                for w in writes {
                    if let Some(existing) = clocked_writes[w.0 as usize] {
                        if existing != clock {
                            return Err(SynthError::new(format!(
                                "`{}` is written from two clock domains",
                                self.design.vars[w.0 as usize].name
                            )));
                        }
                    }
                    clocked_writes[w.0 as usize] = Some(clock);
                }
            }
        }
        // Vars written by *any* always block (clocked or combinational);
        // an unwritten register holds its initial value forever and is a
        // constant in hardware.
        let mut proc_written = vec![false; self.design.vars.len()];
        for p in &self.design.processes {
            if let cascade_sim::Process::Always { body, .. } = p {
                let mut writes = Vec::new();
                collect_writes(body, &mut writes);
                for w in writes {
                    proc_written[w.0 as usize] = true;
                }
            }
        }
        for (i, info) in self.design.vars.iter().enumerate() {
            let var = VarId(i as u32);
            if info.is_array() {
                let mem = MemId(self.nl.mems.len() as u32);
                self.nl.mems.push(Memory {
                    width: info.width,
                    words: info.array_len,
                    name: Some(info.name.clone()),
                    write_ports: Vec::new(),
                });
                self.var_mems[i] = Some(mem);
                continue;
            }
            if info.is_input {
                // Clock-domain discovery above may already have minted a
                // placeholder net for this var (an input used as a clock);
                // patch it in place so the domain's net IS the input net,
                // rather than orphaning it as forever-undriven.
                let net = match self.var_nets[i] {
                    Some(existing) => {
                        self.nl.nets[existing.0 as usize].def = Def::Input;
                        existing
                    }
                    None => self.fresh_net(info.width, Some(info.name.clone()), Def::Input),
                };
                self.nl.inputs.push(net);
                self.var_nets[i] = Some(net);
            } else if let Some(clock) = clocked_writes[i] {
                let reg = RegId(self.nl.regs.len() as u32);
                let q = self.fresh_net(info.width, Some(info.name.clone()), Def::Reg(reg));
                self.nl.regs.push(Register {
                    q,
                    d: q, // patched when the block is synthesized
                    clock,
                    init: info.init.clone().unwrap_or_else(|| Bits::zero(info.width)),
                    name: Some(info.name.clone()),
                });
                self.var_nets[i] = Some(q);
                let _ = var;
            } else if info.class == cascade_sim::VarClass::Reg && !proc_written[i] {
                // Never procedurally written: a constant at its initial
                // value (zero when unspecified).
                let value = info.init.clone().unwrap_or_else(|| Bits::zero(info.width));
                let net = self.fresh_net(info.width, Some(info.name.clone()), Def::Const(value));
                self.var_nets[i] = Some(net);
            }
            // Other vars (wires, comb-block outputs) get nets on demand via
            // placeholder defs patched later.
        }
        Ok(())
    }

    fn clock_id(&mut self, var: VarId, edge: Edge) -> ClockId {
        if let Some(&id) = self.clock_ids.get(&(var, edge)) {
            return id;
        }
        let net = self.var_net(var);
        let id = ClockId(self.nl.clocks.len() as u32);
        self.nl.clocks.push((net, edge));
        self.clock_ids.insert((var, edge), id);
        id
    }

    fn fresh_net(&mut self, width: u32, name: Option<String>, def: Def) -> NetId {
        let id = NetId(self.nl.nets.len() as u32);
        self.nl.nets.push(NetInfo { width, name, def });
        id
    }

    /// The net for a variable, creating a placeholder if none exists yet.
    fn var_net(&mut self, var: VarId) -> NetId {
        if let Some(net) = self.var_nets[var.0 as usize] {
            return net;
        }
        let info = &self.design.vars[var.0 as usize];
        // Placeholder, patched when a driver is found. An unwritten net
        // legitimately stays zero (two-state dangling wire).
        let net = self.fresh_net(info.width, Some(info.name.clone()), Def::Undriven);
        self.var_nets[var.0 as usize] = Some(net);
        net
    }

    fn patch_var(&mut self, var: VarId, driver: NetId) -> Result<(), SynthError> {
        let net = self.var_net(var);
        let info = &self.design.vars[var.0 as usize];
        match &self.nl.nets[net.0 as usize].def {
            Def::Undriven => {
                // Redirect the named net to the driver: constants propagate
                // directly; anything else becomes an identity cell (keeps
                // SSA one-def-per-net).
                self.nl.nets[net.0 as usize].def = match &self.nl.nets[driver.0 as usize].def {
                    Def::Const(c) => Def::Const(c.resize(self.nl.nets[net.0 as usize].width)),
                    _ => Def::Cell(Cell {
                        op: CellOp::ZExt,
                        inputs: vec![driver],
                    }),
                };
                Ok(())
            }
            Def::Input => Err(SynthError::new(format!(
                "`{}` is an input port and cannot be driven",
                info.name
            ))),
            _ => Err(SynthError::new(format!(
                "multiple drivers for `{}`",
                info.name
            ))),
        }
    }

    fn check_drivers(&self) -> Result<(), SynthError> {
        // Registers whose d was never patched keep their value (q == d):
        // that is legal (constant state). Nothing further to check here;
        // combinational cycles are caught by levelization.
        Ok(())
    }

    // ------------------------------------------------------------------
    // Builder with hash-consing and constant folding
    // ------------------------------------------------------------------

    fn const_net(&mut self, value: Bits) -> NetId {
        if let Some(&id) = self.const_cache.get(&value) {
            return id;
        }
        let id = self.fresh_net(value.width(), None, Def::Const(value.clone()));
        self.const_cache.insert(value, id);
        id
    }

    /// Creates (or reuses) a cell producing a `width`-bit net.
    fn cell(&mut self, op: CellOp, inputs: Vec<NetId>, width: u32) -> NetId {
        let cell = Cell { op, inputs };
        // Constant folding.
        let all_const: Option<Vec<Bits>> = cell
            .inputs
            .iter()
            .map(|&i| match &self.nl.nets[i.0 as usize].def {
                Def::Const(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        if let Some(consts) = all_const {
            let value = eval_cell(op, &consts, width);
            return self.const_net(value);
        }
        // Identity simplifications.
        if let CellOp::ZExt = op {
            if self.nl.nets[cell.inputs[0].0 as usize].width == width {
                return cell.inputs[0];
            }
        }
        if let CellOp::Slice { offset: 0 } = op {
            if self.nl.nets[cell.inputs[0].0 as usize].width == width {
                return cell.inputs[0];
            }
        }
        if let CellOp::Mux = op {
            // mux(c, x, x) = x
            if cell.inputs[1] == cell.inputs[2] {
                return cell.inputs[1];
            }
            // mux(const, a, b)
            if let Def::Const(c) = &self.nl.nets[cell.inputs[0].0 as usize].def {
                return if c.to_bool() {
                    cell.inputs[1]
                } else {
                    cell.inputs[2]
                };
            }
        }
        let key = (cell.clone(), width);
        if let Some(&id) = self.cell_cache.get(&key) {
            return id;
        }
        let id = self.fresh_net(width, None, Def::Cell(cell));
        self.cell_cache.insert(key, id);
        id
    }

    /// Extends or truncates `net` to `width`.
    fn ext(&mut self, net: NetId, width: u32, signed: bool) -> NetId {
        let cur = self.nl.nets[net.0 as usize].width;
        if cur == width {
            net
        } else if cur > width {
            self.cell(CellOp::Slice { offset: 0 }, vec![net], width)
        } else if signed {
            self.cell(CellOp::SExt, vec![net], width)
        } else {
            self.cell(CellOp::ZExt, vec![net], width)
        }
    }

    /// Reduces a net to a 1-bit boolean.
    fn boolean(&mut self, net: NetId) -> NetId {
        if self.nl.nets[net.0 as usize].width == 1 {
            net
        } else {
            self.cell(CellOp::RedOr, vec![net], 1)
        }
    }

    fn const_value(&self, net: NetId) -> Option<Bits> {
        match &self.nl.nets[net.0 as usize].def {
            Def::Const(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// Splices `value` (w bits) into `old` at `offset` (net).
    fn splice_dyn(&mut self, old: NetId, offset: NetId, w: u32, value: NetId) -> NetId {
        let width = self.nl.nets[old.0 as usize].width;
        if let Some(off) = self.const_value(offset) {
            return self.splice_const(old, off.to_u64() as u32, w, value);
        }
        // (old & ~(mask << off)) | (zext(value) << off)
        let mask = self.const_net(Bits::ones(w).resize(width));
        let off_w = self.ext(offset, width.max(32), false);
        let shifted_mask = self.cell(CellOp::Shl, vec![mask, off_w], width);
        let inv = self.cell(CellOp::Not, vec![shifted_mask], width);
        let cleared = self.cell(CellOp::And, vec![old, inv], width);
        let val_w = self.ext(value, width, false);
        let shifted_val = self.cell(CellOp::Shl, vec![val_w, off_w], width);
        self.cell(CellOp::Or, vec![cleared, shifted_val], width)
    }

    /// Splices at a constant offset via concatenation.
    fn splice_const(&mut self, old: NetId, offset: u32, w: u32, value: NetId) -> NetId {
        let width = self.nl.nets[old.0 as usize].width;
        if offset >= width {
            return old;
        }
        let w = w.min(width - offset);
        let value = self.ext(value, w, false);
        if offset == 0 && w == width {
            return value;
        }
        let mut parts: Vec<NetId> = Vec::new(); // MSB first
        if offset + w < width {
            let hi = self.cell(
                CellOp::Slice { offset: offset + w },
                vec![old],
                width - offset - w,
            );
            parts.push(hi);
        }
        parts.push(value);
        if offset > 0 {
            let lo = self.cell(CellOp::Slice { offset: 0 }, vec![old], offset);
            parts.push(lo);
        }
        if parts.len() == 1 {
            parts[0]
        } else {
            self.cell(CellOp::Concat, parts, width)
        }
    }

    // ------------------------------------------------------------------
    // Expression synthesis (mirrors the simulator's eval semantics)
    // ------------------------------------------------------------------

    /// Builds `e` in a `ctx`-bit context; the result has width
    /// `max(e.width, ctx)`. `env` supplies blocking-assignment values.
    fn build(
        &mut self,
        e: &RExpr,
        ctx: u32,
        env: Option<&BTreeMap<VarId, SVal>>,
    ) -> Result<NetId, SynthError> {
        let target = e.width.max(ctx);
        Ok(match &e.kind {
            RExprKind::Const(v) => {
                let ext = extend_const(v, target, e.signed);
                self.const_net(ext)
            }
            RExprKind::Var(var) => {
                let net = env
                    .and_then(|m| m.get(var).map(|sv| sv.net))
                    .unwrap_or_else(|| self.var_net(*var));
                self.ext(net, target, e.signed)
            }
            RExprKind::ArrayWord { var, index } => {
                let mem = self.var_mems[var.0 as usize].ok_or_else(|| {
                    SynthError::new(format!(
                        "`{}` is not a memory",
                        self.design.vars[var.0 as usize].name
                    ))
                })?;
                let addr = self.build(index, 0, env)?;
                let width = self.nl.mems[mem.0 as usize].width;
                let read = self.fresh_net(width, None, Def::MemRead { mem, addr });
                self.ext(read, target, e.signed)
            }
            RExprKind::Slice {
                base,
                offset,
                width,
            } => {
                let b = self.build(base, 0, env)?;
                let net = self
                    .build(offset, 0, env)
                    .map(|off| match self.const_value(off) {
                        Some(c) => {
                            let o = c.to_u64();
                            if o >= self.nl.nets[b.0 as usize].width as u64 {
                                self.const_net(Bits::zero(*width))
                            } else {
                                self.cell(CellOp::Slice { offset: o as u32 }, vec![b], *width)
                            }
                        }
                        None => self.cell(CellOp::DynSlice, vec![b, off], *width),
                    })?;
                self.ext(net, target, false)
            }
            RExprKind::Unary { op, operand } => {
                let net = match op {
                    UnaryOp::Plus => self.build(operand, target, env)?,
                    UnaryOp::Neg => {
                        let v = self.build(operand, target, env)?;
                        self.cell(CellOp::Neg, vec![v], target)
                    }
                    UnaryOp::BitNot => {
                        let v = self.build(operand, target, env)?;
                        self.cell(CellOp::Not, vec![v], target)
                    }
                    UnaryOp::LogicalNot => {
                        let v = self.build(operand, 0, env)?;
                        let b = self.boolean(v);
                        self.cell(CellOp::LogNot, vec![b], 1)
                    }
                    UnaryOp::ReduceAnd => {
                        let v = self.build(operand, 0, env)?;
                        self.cell(CellOp::RedAnd, vec![v], 1)
                    }
                    UnaryOp::ReduceOr => {
                        let v = self.build(operand, 0, env)?;
                        self.cell(CellOp::RedOr, vec![v], 1)
                    }
                    UnaryOp::ReduceXor => {
                        let v = self.build(operand, 0, env)?;
                        self.cell(CellOp::RedXor, vec![v], 1)
                    }
                    UnaryOp::ReduceNand => {
                        let v = self.build(operand, 0, env)?;
                        let r = self.cell(CellOp::RedAnd, vec![v], 1);
                        self.cell(CellOp::Not, vec![r], 1)
                    }
                    UnaryOp::ReduceNor => {
                        let v = self.build(operand, 0, env)?;
                        let r = self.cell(CellOp::RedOr, vec![v], 1);
                        self.cell(CellOp::Not, vec![r], 1)
                    }
                    UnaryOp::ReduceXnor => {
                        let v = self.build(operand, 0, env)?;
                        let r = self.cell(CellOp::RedXor, vec![v], 1);
                        self.cell(CellOp::Not, vec![r], 1)
                    }
                };
                self.ext(net, target, false)
            }
            RExprKind::Binary { op, lhs, rhs } => {
                let net = self.build_binary(*op, lhs, rhs, target, env)?;
                self.ext(net, target, false)
            }
            RExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.build(cond, 0, env)?;
                let cb = self.boolean(c);
                let t = self.build(then_expr, target, env)?;
                let t = self.ext(t, target, then_expr.signed);
                let f = self.build(else_expr, target, env)?;
                let f = self.ext(f, target, else_expr.signed);
                self.cell(CellOp::Mux, vec![cb, t, f], target)
            }
            RExprKind::Concat(parts) => {
                let mut nets = Vec::with_capacity(parts.len());
                for p in parts {
                    nets.push(self.build(p, 0, env)?);
                }
                let width: u32 = nets.iter().map(|&n| self.nl.nets[n.0 as usize].width).sum();
                let net = self.cell(CellOp::Concat, nets, width);
                self.ext(net, target, false)
            }
            RExprKind::Repeat { count, inner } => {
                let v = self.build(inner, 0, env)?;
                let w = self.nl.nets[v.0 as usize].width * count;
                let net = self.cell(CellOp::Repeat { count: *count }, vec![v], w);
                self.ext(net, target, false)
            }
            RExprKind::Time | RExprKind::Random => {
                return Err(SynthError::new(
                    "$time/$random are unsynthesizable (keep them in software engines)",
                ));
            }
        })
    }

    fn build_binary(
        &mut self,
        op: BinaryOp,
        lhs: &RExpr,
        rhs: &RExpr,
        target: u32,
        env: Option<&BTreeMap<VarId, SVal>>,
    ) -> Result<NetId, SynthError> {
        use BinaryOp::*;
        Ok(match op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Xnor => {
                let l = self.build(lhs, target, env)?;
                let l = self.ext(l, target, lhs.signed);
                let r = self.build(rhs, target, env)?;
                let r = self.ext(r, target, rhs.signed);
                let signed = lhs.signed && rhs.signed;
                let cop = match op {
                    Add => CellOp::Add,
                    Sub => CellOp::Sub,
                    Mul => CellOp::Mul,
                    Div => {
                        if signed {
                            CellOp::DivS
                        } else {
                            CellOp::DivU
                        }
                    }
                    Rem => {
                        if signed {
                            CellOp::RemS
                        } else {
                            CellOp::RemU
                        }
                    }
                    And => CellOp::And,
                    Or => CellOp::Or,
                    Xor => CellOp::Xor,
                    Xnor => CellOp::Xnor,
                    _ => unreachable!(),
                };
                self.cell(cop, vec![l, r], target)
            }
            Pow => {
                let exp = self.build(rhs, 0, env)?;
                let Some(e) = self.const_value(exp) else {
                    return Err(SynthError::new("`**` requires a constant exponent"));
                };
                let base = self.build(lhs, target, env)?;
                let base = self.ext(base, target, lhs.signed);
                let mut acc = self.const_net(Bits::from_u64(target, 1));
                for _ in 0..e.to_u64().min(4096) {
                    acc = self.cell(CellOp::Mul, vec![acc, base], target);
                }
                acc
            }
            Shl | AShl => {
                let l = self.build(lhs, target, env)?;
                let l = self.ext(l, target, lhs.signed);
                let r = self.build(rhs, 0, env)?;
                self.cell(CellOp::Shl, vec![l, r], target)
            }
            Shr => {
                let l = self.build(lhs, target, env)?;
                let l = self.ext(l, target, lhs.signed);
                let r = self.build(rhs, 0, env)?;
                self.cell(CellOp::Shr, vec![l, r], target)
            }
            AShr => {
                let l = self.build(lhs, target, env)?;
                let l = self.ext(l, target, lhs.signed);
                let r = self.build(rhs, 0, env)?;
                if lhs.signed {
                    self.cell(CellOp::AShr, vec![l, r], target)
                } else {
                    self.cell(CellOp::Shr, vec![l, r], target)
                }
            }
            LogicalAnd | LogicalOr => {
                let l = self.build(lhs, 0, env)?;
                let lb = self.boolean(l);
                let r = self.build(rhs, 0, env)?;
                let rb = self.boolean(r);
                let cop = if op == LogicalAnd {
                    CellOp::And
                } else {
                    CellOp::Or
                };
                self.cell(cop, vec![lb, rb], 1)
            }
            Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                let w = lhs.width.max(rhs.width);
                let signed = lhs.signed && rhs.signed;
                let l0 = self.build(lhs, 0, env)?;
                let l = self.ext(l0, w, signed && lhs.signed);
                let r0 = self.build(rhs, 0, env)?;
                let r = self.ext(r0, w, signed && rhs.signed);
                match op {
                    Eq | CaseEq => self.cell(CellOp::Eq, vec![l, r], 1),
                    Ne | CaseNe => self.cell(CellOp::Ne, vec![l, r], 1),
                    Lt => self.cell(
                        if signed { CellOp::LtS } else { CellOp::LtU },
                        vec![l, r],
                        1,
                    ),
                    Le => self.cell(
                        if signed { CellOp::LeS } else { CellOp::LeU },
                        vec![l, r],
                        1,
                    ),
                    Gt => self.cell(
                        if signed { CellOp::LtS } else { CellOp::LtU },
                        vec![r, l],
                        1,
                    ),
                    Ge => self.cell(
                        if signed { CellOp::LeS } else { CellOp::LeU },
                        vec![r, l],
                        1,
                    ),
                    _ => unreachable!(),
                }
            }
        })
    }

    // ------------------------------------------------------------------
    // Continuous assignments
    // ------------------------------------------------------------------

    fn cont_assign(
        &mut self,
        lhs: &RLValue,
        value: NetId,
        partials: &mut PartialDrivers,
    ) -> Result<(), SynthError> {
        match lhs {
            RLValue::Var(var) => {
                let width = self.design.vars[var.0 as usize].width;
                let v = self.ext(value, width, false);
                self.patch_var(*var, v)
            }
            RLValue::Range { var, offset, width } => {
                let off = self.build(offset, 0, None)?;
                let v = self.ext(value, *width, false);
                partials
                    .entry(*var)
                    .or_default()
                    .push((Some(off), *width, v));
                Ok(())
            }
            RLValue::Concat(parts) => {
                let total: u32 = parts.iter().map(|p| p.width(&self.design.vars)).sum();
                let value = self.ext(value, total, false);
                let mut hi = total;
                for p in parts {
                    let w = p.width(&self.design.vars);
                    let piece = self.cell(CellOp::Slice { offset: hi - w }, vec![value], w);
                    self.cont_assign(p, piece, partials)?;
                    hi -= w;
                }
                Ok(())
            }
            RLValue::ArrayWord { .. } | RLValue::ArrayWordRange { .. } => Err(SynthError::new(
                "memories can only be written in clocked always blocks",
            )),
        }
    }

    // ------------------------------------------------------------------
    // Procedural blocks
    // ------------------------------------------------------------------

    fn always_block(
        &mut self,
        sens: &[cascade_sim::Sens],
        body: &RStmt,
        comb_drivers: &mut PartialDrivers,
    ) -> Result<(), SynthError> {
        let edges: Vec<_> = sens.iter().filter(|s| s.edge.is_some()).collect();
        let comb = edges.is_empty();
        let mut written = Vec::new();
        collect_writes(body, &mut written);
        let mut ctx = BlockCtx {
            env: BTreeMap::new(),
            next: BTreeMap::new(),
            mem_writes: Vec::new(),
            tasks: Vec::new(),
            comb,
            written: written.clone(),
        };
        let true_net = self.const_net(Bits::from_u64(1, 1));
        self.exec(body, true_net, &mut ctx, 0)?;

        if comb {
            if !ctx.tasks.is_empty() {
                return Err(SynthError::new(
                    "system tasks are only synthesizable in clocked always blocks",
                ));
            }
            if !ctx.mem_writes.is_empty() {
                return Err(SynthError::new(
                    "memories can only be written in clocked always blocks",
                ));
            }
            if !ctx.next.is_empty() {
                return Err(SynthError::new(
                    "nonblocking assignments in combinational blocks are unsupported",
                ));
            }
            for var in &written {
                let sval = ctx.env.get(var).copied();
                let Some(sval) = sval.filter(|sv| sv.defined) else {
                    return Err(SynthError::new(format!(
                        "`{}` is not assigned on every path (inferred latch)",
                        self.design.vars[var.0 as usize].name
                    )));
                };
                comb_drivers
                    .entry(*var)
                    .or_default()
                    .push((None, 0, sval.net));
            }
            return Ok(());
        }

        // Clocked block.
        let clock = self.clock_id(edges[0].var, edges[0].edge.expect("edge"));
        // Nonblocking and blocking targets both become register next-states.
        let mut d_values: BTreeMap<VarId, NetId> =
            ctx.next.iter().map(|(k, v)| (*k, v.net)).collect();
        for (var, sval) in &ctx.env {
            if d_values.contains_key(var) {
                return Err(SynthError::new(format!(
                    "`{}` has both blocking and nonblocking writes in one block",
                    self.design.vars[var.0 as usize].name
                )));
            }
            d_values.insert(*var, sval.net);
        }
        for (var, d) in d_values {
            let q = self.var_net(var);
            let Def::Reg(reg) = self.nl.nets[q.0 as usize].def.clone() else {
                return Err(SynthError::new(format!(
                    "`{}` is written both procedurally and continuously",
                    self.design.vars[var.0 as usize].name
                )));
            };
            if self.nl.regs[reg.0 as usize].d != q {
                return Err(SynthError::new(format!(
                    "`{}` is written from multiple always blocks",
                    self.design.vars[var.0 as usize].name
                )));
            }
            let width = self.design.vars[var.0 as usize].width;
            let d = self.ext(d, width, false);
            self.nl.regs[reg.0 as usize].d = d;
        }
        for (mem, enable, addr, data) in ctx.mem_writes {
            self.nl.mems[mem.0 as usize].write_ports.push(WritePort {
                clock,
                enable,
                addr,
                data,
            });
        }
        for (kind, trigger, format, args, arg_signed) in ctx.tasks {
            self.nl.tasks.push(TaskCell {
                kind,
                clock,
                trigger,
                format,
                args,
                arg_signed,
            });
        }
        Ok(())
    }

    fn exec(
        &mut self,
        s: &RStmt,
        cond: NetId,
        ctx: &mut BlockCtx,
        depth: u32,
    ) -> Result<(), SynthError> {
        if depth > 512 {
            return Err(SynthError::new("statement nesting exceeds 512"));
        }
        match s {
            RStmt::Block(stmts) => {
                for st in stmts {
                    self.exec(st, cond, ctx, depth + 1)?;
                }
            }
            RStmt::Blocking { lhs, rhs } => {
                let width = lhs.width(&self.design.vars);
                let value = self.build_in(rhs, width, ctx)?;
                self.proc_assign(lhs, value, cond, ctx, false)?;
            }
            RStmt::NonBlocking { lhs, rhs } => {
                let width = lhs.width(&self.design.vars);
                let value = self.build_in(rhs, width, ctx)?;
                self.proc_assign(lhs, value, cond, ctx, true)?;
            }
            RStmt::If {
                cond: c,
                then_branch,
                else_branch,
            } => {
                let cnet = self.build_in(c, 0, ctx)?;
                let cb = self.boolean(cnet);
                // Static branch: fold away the untaken side entirely.
                if let Some(cv) = self.const_value(cb) {
                    if cv.to_bool() {
                        self.exec(then_branch, cond, ctx, depth + 1)?;
                    } else if let Some(e) = else_branch {
                        self.exec(e, cond, ctx, depth + 1)?;
                    }
                    return Ok(());
                }
                let not_cb = self.cell(CellOp::LogNot, vec![cb], 1);
                let then_cond = self.cell(CellOp::And, vec![cond, cb], 1);
                let else_cond = self.cell(CellOp::And, vec![cond, not_cb], 1);
                // Branch-local environments, merged with muxes at the join.
                let saved_env = ctx.env.clone();
                let saved_next = ctx.next.clone();
                self.exec(then_branch, then_cond, ctx, depth + 1)?;
                let then_env = std::mem::replace(&mut ctx.env, saved_env);
                let then_next = std::mem::replace(&mut ctx.next, saved_next);
                if let Some(e) = else_branch {
                    self.exec(e, else_cond, ctx, depth + 1)?;
                }
                self.merge_branches(cb, then_env, then_next, ctx);
            }
            RStmt::Case {
                kind,
                scrutinee,
                arms,
                default,
            } => {
                let mut w = scrutinee.width;
                for arm in arms {
                    for l in &arm.labels {
                        w = w.max(l.value.width);
                    }
                }
                let scr = self.build_in(scrutinee, w, ctx)?;
                let scr = self.ext(scr, w, scrutinee.signed);
                self.exec_case(
                    *kind,
                    scr,
                    w,
                    arms,
                    0,
                    default.as_deref(),
                    cond,
                    ctx,
                    depth + 1,
                )?;
            }
            RStmt::For {
                init,
                cond: c,
                step,
                body,
            } => {
                self.exec(init, cond, ctx, depth + 1)?;
                let mut iters = 0u32;
                loop {
                    let cnet = self.build_in(c, 0, ctx)?;
                    let Some(cv) = self.const_value(cnet) else {
                        return Err(SynthError::new(
                            "loop condition does not unroll to a constant",
                        ));
                    };
                    if !cv.to_bool() {
                        break;
                    }
                    self.exec(body, cond, ctx, depth + 1)?;
                    self.exec(step, cond, ctx, depth + 1)?;
                    iters += 1;
                    if iters > UNROLL_LIMIT {
                        return Err(SynthError::new(
                            "loop unrolling exceeded 100,000 iterations",
                        ));
                    }
                }
            }
            RStmt::While { cond: c, body } => {
                let mut iters = 0u32;
                loop {
                    let cnet = self.build_in(c, 0, ctx)?;
                    let Some(cv) = self.const_value(cnet) else {
                        return Err(SynthError::new(
                            "loop condition does not unroll to a constant",
                        ));
                    };
                    if !cv.to_bool() {
                        break;
                    }
                    self.exec(body, cond, ctx, depth + 1)?;
                    iters += 1;
                    if iters > UNROLL_LIMIT {
                        return Err(SynthError::new(
                            "loop unrolling exceeded 100,000 iterations",
                        ));
                    }
                }
            }
            RStmt::Repeat { count, body } => {
                let cnet = self.build_in(count, 0, ctx)?;
                let Some(cv) = self.const_value(cnet) else {
                    return Err(SynthError::new(
                        "repeat count must be constant for synthesis",
                    ));
                };
                let n = cv.to_u64().min(UNROLL_LIMIT as u64);
                for _ in 0..n {
                    self.exec(body, cond, ctx, depth + 1)?;
                }
            }
            RStmt::SystemTask { task, args } => {
                let kind = match task {
                    SystemTask::Display => TaskKind::Display,
                    SystemTask::Write => TaskKind::Write,
                    SystemTask::Finish => TaskKind::Finish,
                    SystemTask::Fatal => TaskKind::Fatal,
                    SystemTask::Monitor => {
                        return Err(SynthError::new("$monitor is unsynthesizable"));
                    }
                };
                let mut format = None;
                let mut nets = Vec::new();
                let mut signs = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    match a {
                        RTaskArg::Str(s) if i == 0 => format = Some(s.clone()),
                        RTaskArg::Str(_) => {
                            return Err(SynthError::new(
                                "string arguments after the format are unsupported in hardware",
                            ));
                        }
                        RTaskArg::Expr(e) => {
                            nets.push(self.build_in(e, 0, ctx)?);
                            signs.push(e.signed);
                        }
                    }
                }
                ctx.tasks.push((kind, cond, format, nets, signs));
            }
            RStmt::Null => {}
        }
        Ok(())
    }

    fn case_label_match(
        &mut self,
        kind: CaseKind,
        scr: NetId,
        label: &RCaseLabel,
        w: u32,
        ctx: &mut BlockCtx,
    ) -> Result<NetId, SynthError> {
        let lv = self.build_in(&label.value, w, ctx)?;
        let lv = self.ext(lv, w, false);
        Ok(match (&label.care, kind) {
            (Some(care), CaseKind::Casez | CaseKind::Casex) => {
                let care_net = self.const_net(care.resize(w));
                let ms = self.cell(CellOp::And, vec![scr, care_net], w);
                let ml = self.cell(CellOp::And, vec![lv, care_net], w);
                self.cell(CellOp::Eq, vec![ms, ml], 1)
            }
            (Some(_), CaseKind::Case) => self.const_net(Bits::from_u64(1, 0)),
            (None, _) => self.cell(CellOp::Eq, vec![scr, lv], 1),
        })
    }

    /// Builds an expression inside a procedural block, honouring blocking
    /// assignments and latch detection.
    fn build_in(&mut self, e: &RExpr, ctx_width: u32, ctx: &BlockCtx) -> Result<NetId, SynthError> {
        if ctx.comb {
            // Latch check: reading a var this block writes, before it is
            // assigned, would require remembering the previous value.
            let mut reads = Vec::new();
            cascade_sim::collect_reads(e, &mut reads);
            for r in &reads {
                let defined = ctx.env.get(r).is_some_and(|sv| sv.defined);
                if ctx.written.contains(r) && !defined {
                    return Err(SynthError::new(format!(
                        "`{}` is read before assignment in a combinational block (inferred latch)",
                        self.design.vars[r.0 as usize].name
                    )));
                }
            }
        }
        self.build(e, ctx_width, Some(&ctx.env))
    }

    fn proc_assign(
        &mut self,
        lhs: &RLValue,
        value: NetId,
        cond: NetId,
        ctx: &mut BlockCtx,
        nonblocking: bool,
    ) -> Result<(), SynthError> {
        match lhs {
            RLValue::Var(var) => {
                let width = self.design.vars[var.0 as usize].width;
                let v = self.ext(value, width, false);
                self.write_slot(*var, None, v, ctx, nonblocking)
            }
            RLValue::Range { var, offset, width } => {
                let off = self.build_in(offset, 0, ctx)?;
                let v = self.ext(value, *width, false);
                self.write_slot(*var, Some((off, *width)), v, ctx, nonblocking)
            }
            RLValue::ArrayWord { var, index } => {
                if !nonblocking {
                    return Err(SynthError::new(
                        "blocking writes to memories are unsupported in synthesis",
                    ));
                }
                let mem = self.var_mems[var.0 as usize].ok_or_else(|| {
                    SynthError::new(format!(
                        "`{}` is not a memory",
                        self.design.vars[var.0 as usize].name
                    ))
                })?;
                let addr = self.build_in(index, 0, ctx)?;
                let width = self.nl.mems[mem.0 as usize].width;
                let data = self.ext(value, width, false);
                ctx.mem_writes.push((mem, cond, addr, data));
                Ok(())
            }
            RLValue::ArrayWordRange { .. } => Err(SynthError::new(
                "partial-word memory writes are unsupported in synthesis",
            )),
            RLValue::Concat(parts) => {
                let total: u32 = parts.iter().map(|p| p.width(&self.design.vars)).sum();
                let value = self.ext(value, total, false);
                let mut hi = total;
                for p in parts.clone() {
                    let w = p.width(&self.design.vars);
                    let piece = self.cell(CellOp::Slice { offset: hi - w }, vec![value], w);
                    self.proc_assign(&p, piece, cond, ctx, nonblocking)?;
                    hi -= w;
                }
                Ok(())
            }
        }
    }

    fn write_slot(
        &mut self,
        var: VarId,
        range: Option<(NetId, u32)>,
        value: NetId,
        ctx: &mut BlockCtx,
        nonblocking: bool,
    ) -> Result<(), SynthError> {
        let table = if nonblocking { &ctx.next } else { &ctx.env };
        let old = table.get(&var).copied().unwrap_or_else(|| SVal {
            net: self.var_nets[var.0 as usize].unwrap_or(NetId(0)),
            // Nonblocking and clocked-blocking fall back to the register's
            // current value; a combinational block has no storage to fall
            // back on.
            defined: nonblocking || !ctx.comb,
        });
        let old = if self.var_nets[var.0 as usize].is_none() {
            // Materialize the placeholder net lazily.
            SVal {
                net: self.var_net(var),
                ..old
            }
        } else {
            old
        };
        let sval = match range {
            None => SVal {
                net: value,
                defined: true,
            },
            Some((off, w)) => {
                if ctx.comb && !old.defined {
                    return Err(SynthError::new(format!(
                        "partial first write to `{}` in a combinational block (inferred latch)",
                        self.design.vars[var.0 as usize].name
                    )));
                }
                SVal {
                    net: self.splice_dyn(old.net, off, w, value),
                    defined: old.defined,
                }
            }
        };
        let table = if nonblocking {
            &mut ctx.next
        } else {
            &mut ctx.env
        };
        table.insert(var, sval);
        Ok(())
    }

    /// Merges two branch-local environments at an if/case join: values that
    /// differ become muxes on the branch condition; a variable missing on
    /// one side falls back to its pre-branch storage (register value for
    /// clocked/nonblocking contexts, undefined for combinational ones).
    fn merge_branches(
        &mut self,
        sel: NetId,
        then_env: BTreeMap<VarId, SVal>,
        then_next: BTreeMap<VarId, SVal>,
        ctx: &mut BlockCtx,
    ) {
        let else_env = std::mem::take(&mut ctx.env);
        ctx.env = self.merge_maps(sel, then_env, else_env, ctx.comb);
        let else_next = std::mem::take(&mut ctx.next);
        ctx.next = self.merge_maps(sel, then_next, else_next, false);
    }

    fn merge_maps(
        &mut self,
        sel: NetId,
        then_map: BTreeMap<VarId, SVal>,
        else_map: BTreeMap<VarId, SVal>,
        comb: bool,
    ) -> BTreeMap<VarId, SVal> {
        let mut keys: Vec<VarId> = then_map.keys().chain(else_map.keys()).copied().collect();
        keys.sort();
        keys.dedup();
        let mut out = BTreeMap::new();
        for var in keys {
            let fallback = SVal {
                net: self.var_net(var),
                defined: !comb,
            };
            let t = then_map.get(&var).copied().unwrap_or(fallback);
            let e = else_map.get(&var).copied().unwrap_or(fallback);
            let merged = if t.net == e.net {
                SVal {
                    net: t.net,
                    defined: t.defined && e.defined,
                }
            } else {
                let width = self.design.vars[var.0 as usize].width;
                SVal {
                    net: self.cell(CellOp::Mux, vec![sel, t.net, e.net], width),
                    defined: t.defined && e.defined,
                }
            };
            out.insert(var, merged);
        }
        out
    }

    /// Synthesizes a case statement as a recursive if-else chain with
    /// branch-local environments.
    #[allow(clippy::too_many_arguments)]
    fn exec_case(
        &mut self,
        kind: CaseKind,
        scr: NetId,
        w: u32,
        arms: &[cascade_sim::RCaseArm],
        idx: usize,
        default: Option<&RStmt>,
        cond: NetId,
        ctx: &mut BlockCtx,
        depth: u32,
    ) -> Result<(), SynthError> {
        let Some(arm) = arms.get(idx) else {
            if let Some(d) = default {
                self.exec(d, cond, ctx, depth)?;
            }
            return Ok(());
        };
        let mut hit: Option<NetId> = None;
        for label in &arm.labels {
            let eq = self.case_label_match(kind, scr, label, w, ctx)?;
            hit = Some(match hit {
                None => eq,
                Some(h) => self.cell(CellOp::Or, vec![h, eq], 1),
            });
        }
        let hit = hit.unwrap_or_else(|| self.const_net(Bits::from_u64(1, 0)));
        if let Some(hv) = self.const_value(hit) {
            if hv.to_bool() {
                self.exec(&arm.body, cond, ctx, depth)?;
            } else {
                self.exec_case(kind, scr, w, arms, idx + 1, default, cond, ctx, depth)?;
            }
            return Ok(());
        }
        let not_hit = self.cell(CellOp::LogNot, vec![hit], 1);
        let arm_cond = self.cell(CellOp::And, vec![cond, hit], 1);
        let rest_cond = self.cell(CellOp::And, vec![cond, not_hit], 1);
        let saved_env = ctx.env.clone();
        let saved_next = ctx.next.clone();
        self.exec(&arm.body, arm_cond, ctx, depth)?;
        let then_env = std::mem::replace(&mut ctx.env, saved_env);
        let then_next = std::mem::replace(&mut ctx.next, saved_next);
        self.exec_case(kind, scr, w, arms, idx + 1, default, rest_cond, ctx, depth)?;
        self.merge_branches(hit, then_env, then_next, ctx);
        Ok(())
    }
}

fn extend_const(v: &Bits, target: u32, signed: bool) -> Bits {
    if target == v.width() {
        v.clone()
    } else if signed {
        v.resize_signed(target)
    } else {
        v.resize(target)
    }
}

fn is_empty_block(s: &RStmt) -> bool {
    match s {
        RStmt::Null => true,
        RStmt::Block(stmts) => stmts.iter().all(is_empty_block),
        _ => false,
    }
}

/// Collects the variables written by a statement tree.
pub fn collect_writes(s: &RStmt, out: &mut Vec<VarId>) {
    fn lv(l: &RLValue, out: &mut Vec<VarId>) {
        match l {
            RLValue::Var(v) | RLValue::Range { var: v, .. } => out.push(*v),
            // Memory writes are tracked separately.
            RLValue::ArrayWord { .. } | RLValue::ArrayWordRange { .. } => {}
            RLValue::Concat(parts) => {
                for p in parts {
                    lv(p, out);
                }
            }
        }
    }
    match s {
        RStmt::Block(stmts) => {
            for st in stmts {
                collect_writes(st, out);
            }
        }
        RStmt::Blocking { lhs, .. } | RStmt::NonBlocking { lhs, .. } => lv(lhs, out),
        RStmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_writes(then_branch, out);
            if let Some(e) = else_branch {
                collect_writes(e, out);
            }
        }
        RStmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_writes(&arm.body, out);
            }
            if let Some(d) = default {
                collect_writes(d, out);
            }
        }
        RStmt::For {
            init, step, body, ..
        } => {
            collect_writes(init, out);
            collect_writes(step, out);
            collect_writes(body, out);
        }
        RStmt::While { body, .. } | RStmt::Repeat { body, .. } => collect_writes(body, out),
        RStmt::SystemTask { .. } | RStmt::Null => {}
    }
    out.sort();
    out.dedup();
}
