//! RTL synthesis and fast netlist evaluation for Cascade-rs.
//!
//! This crate turns an elaborated design (from [`cascade_sim`]) into a
//! word-level netlist — the artifact the virtual FPGA toolchain places and
//! routes — and executes it with a Verilator-style compiled schedule. It is
//! the execution substrate behind Cascade's **hardware engines**: once the
//! background compilation finishes, a subprogram stops being interpreted
//! and starts running here, orders of magnitude faster per cycle.
//!
//! System tasks (`$display`, `$finish`) survive synthesis as trigger cells,
//! mirroring the paper's Fig. 10 task-mask transformation: hardware can
//! still "printf".
//!
//! # Examples
//!
//! ```
//! use cascade_netlist::{synthesize, NetlistSim, TaskKind};
//! use cascade_sim::{elaborate, library_from_source};
//!
//! let lib = library_from_source(
//!     "module T(input wire clk, output wire [3:0] o);\n\
//!      reg [3:0] c = 0;\n\
//!      always @(posedge clk) begin\n\
//!        c <= c + 1;\n\
//!        if (c == 2) $display(\"c=%d\", c);\n\
//!      end\n\
//!      assign o = c;\nendmodule",
//! )?;
//! let design = elaborate("T", &lib, &Default::default())?;
//! let netlist = synthesize(&design)?;
//! let mut hw = NetlistSim::new(netlist.into())?;
//! hw.run(4);
//! let fires = hw.drain_tasks();
//! assert_eq!(fires.len(), 1);
//! assert_eq!(fires[0].text, "c=2");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
mod eval;
mod exec;
mod fingerprint;
mod interp;
mod ir;
mod level;
mod lower;
pub mod opt;
mod par;
pub mod stats;

pub use batch::{BatchHarness, MAX_BATCH_LANES};
pub use eval::{clock_edge, eval_cell, NetlistSim, NlProfileReport, TaskFire};
pub use exec::ProgramStats;
pub use fingerprint::{fingerprint, readback_crc};
pub use interp::ReferenceSim;
pub use ir::{
    Cell, CellOp, ClockId, Def, MemId, Memory, NetId, NetInfo, Netlist, RegId, Register, TaskCell,
    TaskKind, WritePort,
};
pub use level::{levelize, levels, logic_depth, LevelError};
pub use lower::{collect_writes, synthesize, synthesize_raw, SynthError};
pub use opt::{balance_case_chains, const_fold, dedupe_clocks, optimize, prune_dead, specialize};
pub use stats::{
    cell_delay_ns, critical_path_ns, estimate_area, estimate_timing, level_population,
    AreaEstimate, TimingEstimate,
};

#[cfg(test)]
mod tests;
