//! Verilog operator semantics over [`Bits`].
//!
//! All arithmetic wraps to the width of `self` (the left operand); callers —
//! i.e. the type checker and lowering passes — are responsible for widening
//! operands to the expression's self-determined width *before* applying an
//! operator, exactly as a Verilog elaborator does.

use crate::bv::{top_mask, Bits, WORD_BITS};
use std::cmp::Ordering;

/// Word `i` of `x` sign-extended to an unbounded width: padding bits of the
/// top word and words past the end read as the sign fill.
fn sext_word(x: &Bits, i: usize, neg: bool) -> u64 {
    let words = x.words();
    let fill = if neg { u64::MAX } else { 0 };
    let Some(&w) = words.get(i) else { return fill };
    if neg && i == words.len() - 1 {
        w | !top_mask(x.width())
    } else {
        w
    }
}

impl Bits {
    fn zip_words(&self, rhs: &Bits, f: impl Fn(u64, u64) -> u64) -> Bits {
        let mut out = Bits::zero(self.width().max(rhs.width()));
        let n = out.word_len();
        {
            let dst = out.words_mut();
            let a = self.words();
            let b = rhs.words();
            for (i, d) in dst.iter_mut().enumerate().take(n) {
                let x = a.get(i).copied().unwrap_or(0);
                let y = b.get(i).copied().unwrap_or(0);
                *d = f(x, y);
            }
        }
        out.canonicalize();
        out
    }

    /// Bitwise AND (`a & b`), zero-extending the narrower operand.
    pub fn and(&self, rhs: &Bits) -> Bits {
        self.zip_words(rhs, |a, b| a & b)
    }

    /// Bitwise OR (`a | b`).
    pub fn or(&self, rhs: &Bits) -> Bits {
        self.zip_words(rhs, |a, b| a | b)
    }

    /// Bitwise XOR (`a ^ b`).
    pub fn xor(&self, rhs: &Bits) -> Bits {
        self.zip_words(rhs, |a, b| a ^ b)
    }

    /// Bitwise XNOR (`a ~^ b`).
    pub fn xnor(&self, rhs: &Bits) -> Bits {
        self.zip_words(rhs, |a, b| !(a ^ b))
    }

    /// Bitwise NOT (`~a`).
    pub fn not(&self) -> Bits {
        let mut out = self.clone();
        for w in out.words_mut() {
            *w = !*w;
        }
        out.canonicalize();
        out
    }

    /// Reduction AND (`&a`): true when every bit is set.
    pub fn reduce_and(&self) -> bool {
        if self.width() == 0 {
            return true;
        }
        let n = self.word_len();
        let ws = self.words();
        for &w in &ws[..n - 1] {
            if w != u64::MAX {
                return false;
            }
        }
        ws[n - 1] == top_mask(self.width())
    }

    /// Reduction OR (`|a`): true when any bit is set.
    pub fn reduce_or(&self) -> bool {
        self.to_bool()
    }

    /// Reduction XOR (`^a`): parity of the set bits.
    pub fn reduce_xor(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Wrapping addition to the width of the wider operand.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// let a = Bits::from_u64(8, 0xff);
    /// assert_eq!(a.add(&Bits::from_u64(8, 1)).to_u64(), 0);
    /// ```
    pub fn add(&self, rhs: &Bits) -> Bits {
        let mut out = Bits::zero(self.width().max(rhs.width()));
        let n = out.word_len();
        let mut carry = 0u64;
        {
            let dst = out.words_mut();
            let a = self.words();
            let b = rhs.words();
            for (i, d) in dst.iter_mut().enumerate().take(n) {
                let x = a.get(i).copied().unwrap_or(0);
                let y = b.get(i).copied().unwrap_or(0);
                let (s1, c1) = x.overflowing_add(y);
                let (s2, c2) = s1.overflowing_add(carry);
                *d = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
        }
        out.canonicalize();
        out
    }

    /// Wrapping subtraction (`a - b`).
    pub fn sub(&self, rhs: &Bits) -> Bits {
        let w = self.width().max(rhs.width());
        // a - b == a + ~b + 1 at width w.
        let nb = rhs.resize(w).not();
        self.resize(w)
            .add(&nb)
            .add(&Bits::from_u64(w.max(1), 1))
            .resize(w)
    }

    /// Two's-complement negation (`-a`).
    pub fn neg(&self) -> Bits {
        Bits::zero(self.width()).sub(self)
    }

    /// Wrapping multiplication to the width of the wider operand.
    pub fn mul(&self, rhs: &Bits) -> Bits {
        let w = self.width().max(rhs.width());
        let mut out = Bits::zero(w);
        let n = out.word_len();
        let a = self.words();
        let b = rhs.words();
        for (i, &x) in a.iter().enumerate() {
            if x == 0 || i >= n {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &y) in b.iter().enumerate() {
                if i + j >= n {
                    break;
                }
                let idx = i + j;
                let cur = out.words()[idx] as u128;
                let prod = (x as u128) * (y as u128) + cur + carry;
                out.words_mut()[idx] = prod as u64;
                carry = prod >> 64;
            }
            // Propagate any remaining carry.
            let mut idx = i + b.len();
            while carry != 0 && idx < n {
                let sum = out.words()[idx] as u128 + carry;
                out.words_mut()[idx] = sum as u64;
                carry = sum >> 64;
                idx += 1;
            }
        }
        out.canonicalize();
        out
    }

    /// Unsigned division (`a / b`). Division by zero yields all-ones, the
    /// conventional two-state substitute for Verilog's `x` result.
    pub fn div(&self, rhs: &Bits) -> Bits {
        let w = self.width().max(rhs.width());
        if !rhs.to_bool() {
            return Bits::ones(w);
        }
        if self.fits_u64() && rhs.fits_u64() {
            return Bits::from_u64(w, self.to_u64() / rhs.to_u64());
        }
        self.divmod_big(rhs).0.resize(w)
    }

    /// Unsigned remainder (`a % b`). Modulo zero yields all-ones.
    pub fn rem(&self, rhs: &Bits) -> Bits {
        let w = self.width().max(rhs.width());
        if !rhs.to_bool() {
            return Bits::ones(w);
        }
        if self.fits_u64() && rhs.fits_u64() {
            return Bits::from_u64(w, self.to_u64() % rhs.to_u64());
        }
        self.divmod_big(rhs).1.resize(w)
    }

    /// Schoolbook bit-serial division for wide operands.
    fn divmod_big(&self, rhs: &Bits) -> (Bits, Bits) {
        let w = self.width().max(rhs.width());
        let mut quo = Bits::zero(w);
        let mut rem = Bits::zero(w + 1);
        let den = rhs.resize(w + 1);
        for i in (0..self.width()).rev() {
            rem = rem.shl(1);
            rem.set_bit(0, self.bit(i));
            if rem.cmp_unsigned(&den) != Ordering::Less {
                rem = rem.sub(&den);
                if i < w {
                    quo.set_bit(i, true);
                }
            }
        }
        (quo, rem.resize(w))
    }

    /// Power (`a ** b`), wrapping to the width of `a`.
    pub fn pow(&self, rhs: &Bits) -> Bits {
        let mut result = Bits::from_u64(self.width().max(1), 1).resize(self.width());
        let mut base = self.clone();
        let mut exp = rhs.to_u64();
        if !rhs.fits_u64() {
            // Enormous exponents of 0/1 bases still terminate; anything else
            // saturates the wrap behaviour identically to exp's low 64 bits.
            exp = u64::MAX;
        }
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul(&base).resize(self.width());
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base).resize(self.width());
            }
        }
        result
    }

    /// Logical shift left by a dynamic amount, keeping the width of `self`.
    pub fn shl(&self, amount: u32) -> Bits {
        if amount >= self.width() {
            return Bits::zero(self.width());
        }
        let mut out = Bits::zero(self.width());
        let word_shift = (amount / WORD_BITS) as usize;
        let bit_shift = amount % WORD_BITS;
        let n = out.word_len();
        {
            let src = self.words();
            let dst = out.words_mut();
            for i in (0..n).rev() {
                if i < word_shift {
                    break;
                }
                let mut v = src[i - word_shift] << bit_shift;
                if bit_shift != 0 && i > word_shift {
                    v |= src[i - word_shift - 1] >> (WORD_BITS - bit_shift);
                }
                dst[i] = v;
            }
        }
        out.canonicalize();
        out
    }

    /// Logical shift right by a dynamic amount.
    pub fn shr(&self, amount: u32) -> Bits {
        if amount >= self.width() {
            return Bits::zero(self.width());
        }
        self.slice(amount, self.width() - amount)
            .resize(self.width())
    }

    /// Arithmetic shift right (`>>>` under signed interpretation).
    pub fn ashr(&self, amount: u32) -> Bits {
        if self.width() == 0 {
            return self.clone();
        }
        let sign = self.msb();
        if amount >= self.width() {
            return if sign {
                Bits::ones(self.width())
            } else {
                Bits::zero(self.width())
            };
        }
        let mut out = self.shr(amount);
        if sign {
            for i in (self.width() - amount)..self.width() {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Unsigned comparison.
    ///
    /// Operands of different widths compare by value (zero-extension).
    pub fn cmp_unsigned(&self, rhs: &Bits) -> Ordering {
        let n = self.word_len().max(rhs.word_len());
        for i in (0..n).rev() {
            let a = self.words().get(i).copied().unwrap_or(0);
            let b = rhs.words().get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Signed comparison at the width of the wider operand.
    pub fn cmp_signed(&self, rhs: &Bits) -> Ordering {
        let a_neg = self.msb();
        let b_neg = rhs.msb();
        match (a_neg, b_neg) {
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        // Same sign: word-wise unsigned comparison of the sign-extended
        // two's-complement patterns orders correctly, and extending on the
        // fly avoids materializing resized copies of both operands.
        let n = self.word_len().max(rhs.word_len());
        for i in (0..n).rev() {
            let a = sext_word(self, i, a_neg);
            let b = sext_word(rhs, i, b_neg);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Verilog equality by value (`==`), with zero extension.
    pub fn eq_value(&self, rhs: &Bits) -> bool {
        self.cmp_unsigned(rhs) == Ordering::Equal
    }
}
