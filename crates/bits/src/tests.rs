use crate::Bits;
use std::cmp::Ordering;

#[test]
fn zero_and_ones() {
    assert_eq!(Bits::zero(9).to_u64(), 0);
    assert_eq!(Bits::ones(9).to_u64(), 0x1ff);
    assert_eq!(Bits::ones(64).to_u64(), u64::MAX);
    assert_eq!(Bits::ones(65).count_ones(), 65);
}

#[test]
fn from_u64_truncates() {
    assert_eq!(Bits::from_u64(4, 0x1234).to_u64(), 4);
    assert_eq!(Bits::from_u64(64, u64::MAX).to_u64(), u64::MAX);
    assert_eq!(Bits::from_u64(0, 99).to_u64(), 0);
}

#[test]
fn from_words_wide() {
    let b = Bits::from_words(128, &[1, 2]);
    assert_eq!(b.slice(64, 64).to_u64(), 2);
    assert_eq!(b.slice(0, 64).to_u64(), 1);
}

#[test]
fn bit_get_set() {
    let mut b = Bits::zero(70);
    b.set_bit(69, true);
    assert!(b.bit(69));
    assert!(!b.bit(68));
    // Out-of-range read is zero; write is ignored.
    assert!(!b.bit(1000));
    b.set_bit(1000, true);
    assert_eq!(b.count_ones(), 1);
}

#[test]
fn slice_and_splice() {
    let x = Bits::from_u64(16, 0xabcd);
    assert_eq!(x.slice(0, 4).to_u64(), 0xd);
    assert_eq!(x.slice(12, 4).to_u64(), 0xa);
    assert_eq!(x.slice(4, 8).to_u64(), 0xbc);
    // Slice past the end zero-fills.
    assert_eq!(x.slice(12, 8).to_u64(), 0xa);

    let mut y = Bits::zero(16);
    y.splice(4, &Bits::from_u64(8, 0xff));
    assert_eq!(y.to_u64(), 0x0ff0);
}

#[test]
fn slice_cross_word_boundary() {
    let b = Bits::from_words(128, &[0xdead_beef_0000_0000, 0x0000_0000_cafe_babe]);
    assert_eq!(b.slice(32, 64).to_u64(), 0xcafe_babe_dead_beef);
}

#[test]
fn concat_repeat() {
    let hi = Bits::from_u64(4, 0xa);
    let lo = Bits::from_u64(4, 0xb);
    let c = hi.concat(&lo);
    assert_eq!(c.width(), 8);
    assert_eq!(c.to_u64(), 0xab);
    assert_eq!(Bits::from_u64(2, 0b10).repeat(3).to_u64(), 0b101010);
    assert_eq!(Bits::from_u64(8, 1).repeat(0).width(), 0);
}

#[test]
fn resize_and_sign_extend() {
    assert_eq!(Bits::from_u64(8, 0x80).resize(16).to_u64(), 0x80);
    assert_eq!(Bits::from_u64(8, 0x80).resize_signed(16).to_u64(), 0xff80);
    assert_eq!(Bits::from_u64(8, 0x7f).resize_signed(16).to_u64(), 0x7f);
    assert_eq!(Bits::from_u64(16, 0xffff).resize_signed(8).to_u64(), 0xff);
}

#[test]
fn add_with_carry_across_words() {
    let a = Bits::from_words(128, &[u64::MAX, 0]);
    let one = Bits::from_u64(128, 1);
    let s = a.add(&one);
    assert_eq!(s.slice(64, 64).to_u64(), 1);
    assert_eq!(s.slice(0, 64).to_u64(), 0);
}

#[test]
fn add_wraps_at_width() {
    let a = Bits::from_u64(8, 0xff);
    assert_eq!(a.add(&Bits::from_u64(8, 2)).to_u64(), 1);
}

#[test]
fn sub_and_neg() {
    let a = Bits::from_u64(8, 5);
    let b = Bits::from_u64(8, 7);
    assert_eq!(a.sub(&b).to_u64(), 0xfe); // -2 mod 256
    assert_eq!(b.sub(&a).to_u64(), 2);
    assert_eq!(Bits::from_u64(8, 1).neg().to_u64(), 0xff);
    assert_eq!(Bits::zero(8).neg().to_u64(), 0);
}

#[test]
fn mul_wide() {
    let a = Bits::from_u64(128, u64::MAX);
    let sq = a.mul(&a);
    // (2^64-1)^2 = 2^128 - 2^65 + 1
    assert_eq!(sq.slice(0, 64).to_u64(), 1);
    assert_eq!(sq.slice(64, 64).to_u64(), u64::MAX - 1);
}

#[test]
fn mul_wraps() {
    let a = Bits::from_u64(8, 16);
    assert_eq!(a.mul(&a).to_u64(), 0); // 256 wraps to 0
}

#[test]
fn div_rem_small() {
    let a = Bits::from_u64(16, 1000);
    let b = Bits::from_u64(16, 7);
    assert_eq!(a.div(&b).to_u64(), 142);
    assert_eq!(a.rem(&b).to_u64(), 6);
}

#[test]
fn div_rem_wide() {
    let a = Bits::from_words(128, &[0, 1]); // 2^64
    let b = Bits::from_u64(128, 3);
    let q = a.div(&b);
    let r = a.rem(&b);
    assert_eq!(q.mul(&b).add(&r), a);
    assert_eq!(r.to_u64(), 1);
}

#[test]
fn div_by_zero_is_all_ones() {
    let a = Bits::from_u64(8, 42);
    assert_eq!(a.div(&Bits::zero(8)).to_u64(), 0xff);
    assert_eq!(a.rem(&Bits::zero(8)).to_u64(), 0xff);
}

#[test]
fn pow_semantics() {
    let two = Bits::from_u64(8, 2);
    assert_eq!(two.pow(&Bits::from_u64(8, 7)).to_u64(), 128);
    assert_eq!(two.pow(&Bits::from_u64(8, 8)).to_u64(), 0); // wraps
    assert_eq!(two.pow(&Bits::zero(8)).to_u64(), 1);
    assert_eq!(Bits::zero(8).pow(&Bits::zero(8)).to_u64(), 1);
}

#[test]
fn shifts() {
    let a = Bits::from_u64(8, 0b1001_0110);
    assert_eq!(a.shl(2).to_u64(), 0b0101_1000);
    assert_eq!(a.shr(2).to_u64(), 0b0010_0101);
    assert_eq!(a.shl(8).to_u64(), 0);
    assert_eq!(a.shr(100).to_u64(), 0);
    assert_eq!(a.ashr(2).to_u64(), 0b1110_0101);
    assert_eq!(Bits::from_u64(8, 0x70).ashr(2).to_u64(), 0x1c);
    assert_eq!(a.ashr(100).to_u64(), 0xff);
}

#[test]
fn shifts_wide() {
    let a = Bits::from_u64(128, 1);
    assert_eq!(a.shl(100).leading_one(), Some(100));
    assert_eq!(a.shl(100).shr(100).to_u64(), 1);
}

#[test]
fn logic_ops() {
    let a = Bits::from_u64(8, 0b1100);
    let b = Bits::from_u64(8, 0b1010);
    assert_eq!(a.and(&b).to_u64(), 0b1000);
    assert_eq!(a.or(&b).to_u64(), 0b1110);
    assert_eq!(a.xor(&b).to_u64(), 0b0110);
    assert_eq!(a.xnor(&b).to_u64(), 0xf9);
    assert_eq!(a.not().to_u64(), 0xf3);
}

#[test]
fn reductions() {
    assert!(Bits::ones(65).reduce_and());
    assert!(!Bits::from_u64(8, 0xfe).reduce_and());
    assert!(Bits::from_u64(8, 0x10).reduce_or());
    assert!(!Bits::zero(8).reduce_or());
    assert!(Bits::from_u64(8, 0b0111).reduce_xor());
    assert!(!Bits::from_u64(8, 0b0110).reduce_xor());
    assert!(Bits::zero(0).reduce_and()); // vacuous truth
}

#[test]
fn comparisons() {
    let a = Bits::from_u64(8, 5);
    let b = Bits::from_u64(16, 5);
    assert!(a.eq_value(&b));
    assert_eq!(a.cmp_unsigned(&Bits::from_u64(8, 9)), Ordering::Less);
    // Signed: 0xff (8-bit) is -1 < 1
    let neg1 = Bits::from_u64(8, 0xff);
    assert_eq!(neg1.cmp_signed(&Bits::from_u64(8, 1)), Ordering::Less);
    assert_eq!(neg1.cmp_unsigned(&Bits::from_u64(8, 1)), Ordering::Greater);
    assert_eq!(neg1.cmp_signed(&Bits::from_u64(8, 0xfe)), Ordering::Greater);
}

#[test]
fn to_i64() {
    assert_eq!(Bits::from_u64(8, 0xff).to_i64(), -1);
    assert_eq!(Bits::from_u64(8, 0x7f).to_i64(), 127);
    assert_eq!(Bits::from_u64(64, u64::MAX).to_i64(), -1);
    assert_eq!(Bits::zero(0).to_i64(), 0);
}

#[test]
fn formatting() {
    let b = Bits::from_u64(12, 0xabc);
    assert_eq!(b.to_hex_string(), "abc");
    assert_eq!(b.to_binary_string(), "101010111100");
    assert_eq!(b.to_decimal_string(), "2748");
    assert_eq!(b.to_octal_string(), "5274");
    assert_eq!(format!("{b}"), "12'habc");
    assert_eq!(format!("{b:#x}"), "0xabc");
}

#[test]
fn wide_decimal_formatting() {
    // 2^100 = 1267650600228229401496703205376
    let b = Bits::from_u64(101, 1).shl(100);
    assert_eq!(b.to_decimal_string(), "1267650600228229401496703205376");
}

#[test]
fn signed_decimal() {
    assert_eq!(Bits::from_u64(8, 0xff).to_signed_decimal_string(), "-1");
    assert_eq!(Bits::from_u64(8, 5).to_signed_decimal_string(), "5");
}

#[test]
fn parse_literals() {
    assert_eq!("8'hff".parse::<Bits>().unwrap().to_u64(), 0xff);
    assert_eq!("4'b1010".parse::<Bits>().unwrap().to_u64(), 0b1010);
    assert_eq!("8'o17".parse::<Bits>().unwrap().to_u64(), 0o17);
    assert_eq!("16'd1000".parse::<Bits>().unwrap().to_u64(), 1000);
    assert_eq!("'d42".parse::<Bits>().unwrap().width(), 32);
    assert_eq!("42".parse::<Bits>().unwrap().to_u64(), 42);
    assert_eq!("8'sd5".parse::<Bits>().unwrap().to_u64(), 5);
    assert_eq!(
        "32'hdead_beef".parse::<Bits>().unwrap().to_u64(),
        0xdead_beef
    );
    // Truncation: digits beyond the width wrap.
    assert_eq!("4'hff".parse::<Bits>().unwrap().to_u64(), 0xf);
}

#[test]
fn parse_errors() {
    assert!("8'hx".parse::<Bits>().is_err());
    assert!("8'q7".parse::<Bits>().is_err());
    assert!("8'h".parse::<Bits>().is_err());
    assert!("0'h1".parse::<Bits>().is_err());
    assert!("zz".parse::<Bits>().is_err());
}

#[test]
fn iterators() {
    let b: Bits = [true, false, true].into_iter().collect();
    assert_eq!(b.width(), 3);
    assert_eq!(b.to_u64(), 0b101);
    let round: Vec<bool> = b.iter_bits().collect();
    assert_eq!(round, vec![true, false, true]);
}

#[test]
fn leading_one() {
    assert_eq!(Bits::zero(32).leading_one(), None);
    assert_eq!(Bits::from_u64(32, 1).leading_one(), Some(0));
    assert_eq!(Bits::from_u64(128, 1).shl(77).leading_one(), Some(77));
}

#[test]
fn common_traits() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Bits>();
    let b = Bits::default();
    assert!(b.is_empty());
    assert_eq!(b, Bits::zero(0));
    let c: Bits = true.into();
    assert_eq!(c.width(), 1);
    let d: Bits = 7u64.into();
    assert_eq!(d.width(), 64);
}
