//! Core bit-vector storage and structural operations.

/// An arbitrary-width two-state bit vector.
///
/// Widths of 64 bits or fewer are stored inline; wider values are stored in a
/// boxed word slice. Every value is kept *canonical*: bits above `width` are
/// zero, so word-wise equality and hashing are well defined.
///
/// The zero-width vector is permitted (it arises from empty concatenations
/// during lowering) and behaves as an empty value equal to itself.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: u32,
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small(u64),
    Big(Box<[u64]>),
}

pub(crate) const WORD_BITS: u32 = 64;

#[inline]
pub(crate) fn words_for(width: u32) -> usize {
    width.div_ceil(WORD_BITS) as usize
}

/// Mask covering the valid bits of the top word of a `width`-bit value.
#[inline]
pub(crate) fn top_mask(width: u32) -> u64 {
    let rem = width % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl Bits {
    /// Creates a zero-valued vector of the given width.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// assert_eq!(Bits::zero(128).count_ones(), 0);
    /// ```
    pub fn zero(width: u32) -> Self {
        if width <= WORD_BITS {
            Bits {
                width,
                repr: Repr::Small(0),
            }
        } else {
            Bits {
                width,
                repr: Repr::Big(vec![0u64; words_for(width)].into_boxed_slice()),
            }
        }
    }

    /// Creates an all-ones vector of the given width.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// assert_eq!(Bits::ones(7).to_u64(), 0x7f);
    /// ```
    pub fn ones(width: u32) -> Self {
        let mut b = Bits::zero(width);
        for w in b.words_mut() {
            *w = u64::MAX;
        }
        b.canonicalize();
        b
    }

    /// Creates a vector of the given width from the low bits of `value`.
    ///
    /// Bits of `value` above `width` are discarded; if `width > 64` the value
    /// is zero-extended.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// assert_eq!(Bits::from_u64(4, 0xff).to_u64(), 0xf);
    /// ```
    #[inline]
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut b = Bits::zero(width);
        if width > 0 {
            b.words_mut()[0] = value;
        }
        b.canonicalize();
        b
    }

    /// Creates a one-bit vector from a boolean.
    #[inline]
    pub fn from_bool(value: bool) -> Self {
        Bits::from_u64(1, value as u64)
    }

    /// Creates a vector from little-endian 64-bit words.
    ///
    /// Extra words are ignored and missing words are zero.
    pub fn from_words(width: u32, words: &[u64]) -> Self {
        let mut b = Bits::zero(width);
        let n = b.word_len();
        for (dst, src) in b.words_mut().iter_mut().zip(words.iter().take(n)) {
            *dst = *src;
        }
        b.canonicalize();
        b
    }

    /// The width of this vector in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether the width is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// The little-endian word representation.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Small(w) => std::slice::from_ref(w),
            Repr::Big(ws) => ws,
        }
    }

    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Small(w) => std::slice::from_mut(w),
            Repr::Big(ws) => ws,
        }
    }

    #[inline]
    pub(crate) fn word_len(&self) -> usize {
        self.words().len()
    }

    /// Zeroes any bits above `width`, restoring the canonical form.
    #[inline]
    pub(crate) fn canonicalize(&mut self) {
        if self.width == 0 {
            match &mut self.repr {
                Repr::Small(w) => *w = 0,
                Repr::Big(_) => unreachable!("zero-width Big repr"),
            }
            return;
        }
        let mask = top_mask(self.width);
        let last = self.word_len() - 1;
        self.words_mut()[last] &= mask;
    }

    /// The value as a `u64`, truncating any bits above 64.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// let wide = Bits::ones(100);
    /// assert_eq!(wide.to_u64(), u64::MAX);
    /// ```
    #[inline]
    pub fn to_u64(&self) -> u64 {
        if self.width == 0 {
            0
        } else {
            self.words()[0]
        }
    }

    /// The value as a `usize`, truncating high bits.
    #[inline]
    pub fn to_usize(&self) -> usize {
        self.to_u64() as usize
    }

    /// Whether any bit is set (Verilog truthiness).
    #[inline]
    pub fn to_bool(&self) -> bool {
        self.words().iter().any(|&w| w != 0)
    }

    /// Whether all bits fit in 64 bits without loss.
    pub fn fits_u64(&self) -> bool {
        self.words().iter().skip(1).all(|&w| w == 0)
    }

    /// The bit at `index`, or `false` when out of range (Verilog reads of
    /// out-of-range selects return zero in two-state mode).
    #[inline]
    pub fn bit(&self, index: u32) -> bool {
        if index >= self.width {
            return false;
        }
        let word = (index / WORD_BITS) as usize;
        let off = index % WORD_BITS;
        (self.words()[word] >> off) & 1 == 1
    }

    /// Sets the bit at `index`. Out-of-range writes are ignored.
    pub fn set_bit(&mut self, index: u32, value: bool) {
        if index >= self.width {
            return;
        }
        let word = (index / WORD_BITS) as usize;
        let off = index % WORD_BITS;
        let w = &mut self.words_mut()[word];
        if value {
            *w |= 1u64 << off;
        } else {
            *w &= !(1u64 << off);
        }
    }

    /// Extracts bits `[lo, lo + width)`, zero-filling beyond the source.
    ///
    /// This implements Verilog part-selects (`x[h:l]`, `x[l +: w]`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// let x = Bits::from_u64(16, 0xabcd);
    /// assert_eq!(x.slice(4, 8).to_u64(), 0xbc);
    /// ```
    pub fn slice(&self, lo: u32, width: u32) -> Bits {
        let mut out = Bits::zero(width);
        if width == 0 {
            return out;
        }
        let word_off = (lo / WORD_BITS) as usize;
        let bit_off = lo % WORD_BITS;
        let src = self.words();
        let n = out.word_len();
        {
            let dst = out.words_mut();
            for (i, d) in dst.iter_mut().enumerate().take(n) {
                let idx = word_off + i;
                let low = src.get(idx).copied().unwrap_or(0);
                let mut v = low >> bit_off;
                if bit_off != 0 {
                    let high = src.get(idx + 1).copied().unwrap_or(0);
                    v |= high << (WORD_BITS - bit_off);
                }
                *d = v;
            }
        }
        out.canonicalize();
        out
    }

    /// Writes `src` into bits `[lo, lo + src.width())`; bits that fall outside
    /// `self` are discarded.
    ///
    /// This implements part-select assignment targets.
    pub fn splice(&mut self, lo: u32, src: &Bits) {
        for i in 0..src.width() {
            let dst = lo.checked_add(i);
            if let Some(d) = dst {
                if d < self.width {
                    self.set_bit(d, src.bit(i));
                }
            }
        }
    }

    /// Returns this value zero-extended or truncated to `width`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// assert_eq!(Bits::from_u64(8, 0xff).resize(4).to_u64(), 0xf);
    /// assert_eq!(Bits::from_u64(4, 0xf).resize(8).to_u64(), 0xf);
    /// ```
    pub fn resize(&self, width: u32) -> Bits {
        if width == self.width {
            return self.clone();
        }
        if width <= WORD_BITS {
            // Word fast path: truncation to (or zero-extension within) a
            // single word is one masked copy, no slice walk.
            return Bits::from_u64(width, self.to_u64());
        }
        let mut out = Bits::zero(width);
        let n = out.word_len().min(self.word_len());
        let src = self.words();
        out.words_mut()[..n].copy_from_slice(&src[..n]);
        out.canonicalize();
        out
    }

    /// Returns this value sign-extended or truncated to `width`.
    pub fn resize_signed(&self, width: u32) -> Bits {
        if width <= self.width {
            return self.resize(width);
        }
        let mut out = self.resize(width);
        if self.width > 0 && self.bit(self.width - 1) {
            for i in self.width..width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Concatenates `self` above `low` (`{self, low}` in Verilog).
    ///
    /// # Examples
    ///
    /// ```
    /// # use cascade_bits::Bits;
    /// let hi = Bits::from_u64(4, 0xa);
    /// let lo = Bits::from_u64(8, 0xbc);
    /// assert_eq!(hi.concat(&lo).to_u64(), 0xabc);
    /// ```
    pub fn concat(&self, low: &Bits) -> Bits {
        let width = self.width + low.width;
        let mut out = low.resize(width);
        out.splice(low.width, self);
        out
    }

    /// Repeats this value `count` times (`{count{self}}` in Verilog).
    pub fn repeat(&self, count: u32) -> Bits {
        let mut out = Bits::zero(self.width * count);
        for i in 0..count {
            out.splice(i * self.width, self);
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Index of the most significant set bit, or `None` if zero.
    pub fn leading_one(&self) -> Option<u32> {
        for (i, &w) in self.words().iter().enumerate().rev() {
            if w != 0 {
                return Some(i as u32 * WORD_BITS + (63 - w.leading_zeros()));
            }
        }
        None
    }

    /// The most significant bit (the sign bit under signed interpretation).
    #[inline]
    pub fn msb(&self) -> bool {
        if self.width == 0 {
            false
        } else {
            self.bit(self.width - 1)
        }
    }

    /// Interprets the value as a signed integer, returning its value as
    /// `i64` when the width is at most 64 bits.
    #[inline]
    pub fn to_i64(&self) -> i64 {
        if self.width == 0 {
            return 0;
        }
        let v = self.to_u64();
        if self.width >= 64 {
            v as i64
        } else if self.msb() {
            (v | !((1u64 << self.width) - 1)) as i64
        } else {
            v as i64
        }
    }

    /// Iterates over bits from least significant to most significant.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }
}

impl Default for Bits {
    /// A zero-width empty value.
    fn default() -> Self {
        Bits::zero(0)
    }
}

impl From<bool> for Bits {
    fn from(b: bool) -> Self {
        Bits::from_bool(b)
    }
}

impl From<u64> for Bits {
    /// A 64-bit vector holding `value` (widths follow Verilog's unsized
    /// literal convention of at least 32 bits; we use the full 64).
    fn from(value: u64) -> Self {
        Bits::from_u64(64, value)
    }
}

impl FromIterator<bool> for Bits {
    /// Collects bits from least significant to most significant.
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        let mut out = Bits::zero(bits.len() as u32);
        for (i, b) in bits.iter().enumerate() {
            out.set_bit(i as u32, *b);
        }
        out
    }
}
