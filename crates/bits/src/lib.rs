//! Arbitrary-width two-state bit vectors with Verilog operator semantics.
//!
//! [`Bits`] is the value type used by every evaluator in Cascade-rs: the
//! AST interpreter in `cascade-sim`, the netlist evaluator in
//! `cascade-netlist`, and the MMIO register file in `cascade-fpga`. Values
//! carry an explicit bit width and all operators wrap to that width, mirroring
//! the semantics of synthesizable Verilog-2005 (two-state; see DESIGN.md for
//! the X/Z substitution note).
//!
//! # Examples
//!
//! ```
//! use cascade_bits::Bits;
//!
//! let x = Bits::from_u64(8, 0x80);
//! let rol = if x == Bits::from_u64(8, 0x80) {
//!     Bits::from_u64(8, 1)
//! } else {
//!     x.shl(1)
//! };
//! assert_eq!(rol.to_u64(), 1);
//! ```

mod bv;
mod fmt;
mod ops;
mod parse;
pub mod prng;

pub use bv::Bits;
pub use parse::ParseBitsError;
pub use prng::Prng;

#[cfg(test)]
mod tests;
