//! Parsing of Verilog-style literals into [`Bits`].

use crate::Bits;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a Verilog literal fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitsError {
    message: String,
}

impl ParseBitsError {
    fn new(message: impl Into<String>) -> Self {
        ParseBitsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid verilog literal: {}", self.message)
    }
}

impl Error for ParseBitsError {}

impl Bits {
    /// Parses the digit body of a based literal (`1a2f`, `0101`, `42`) at the
    /// given radix into a `width`-bit value. Underscores are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] when the body is empty or contains a digit
    /// invalid for the radix. Digits beyond `width` wrap (are discarded),
    /// matching Verilog truncation semantics.
    pub fn from_str_radix(width: u32, radix: u32, body: &str) -> Result<Bits, ParseBitsError> {
        debug_assert!(
            matches!(radix, 2 | 8 | 10 | 16),
            "radix must be 2, 8, 10 or 16"
        );
        let mut out = Bits::zero(width);
        let base = Bits::from_u64(width.max(4), radix as u64);
        let mut any = false;
        for c in body.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(radix).ok_or_else(|| {
                ParseBitsError::new(format!("digit {c:?} invalid for base {radix}"))
            })?;
            any = true;
            out = out.mul(&base).resize(width);
            out = out.add(&Bits::from_u64(width, d as u64)).resize(width);
        }
        if !any {
            return Err(ParseBitsError::new("empty digit string"));
        }
        Ok(out)
    }

    /// Parses a full Verilog literal: `8'hff`, `4'b1010`, `'d42`, or a bare
    /// decimal like `42` (which gets the conventional 32-bit width).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] on malformed syntax or invalid digits.
    ///
    /// # Examples
    ///
    /// ```
    /// use cascade_bits::Bits;
    /// let b: Bits = "8'h80".parse()?;
    /// assert_eq!(b.to_u64(), 0x80);
    /// assert_eq!(b.width(), 8);
    /// # Ok::<(), cascade_bits::ParseBitsError>(())
    /// ```
    pub fn parse_literal(text: &str) -> Result<Bits, ParseBitsError> {
        let text = text.trim();
        match text.find('\'') {
            None => {
                let body: String = text.chars().filter(|&c| c != '_').collect();
                let v: u64 = body
                    .parse()
                    .map_err(|_| ParseBitsError::new(format!("bad decimal {text:?}")))?;
                Ok(Bits::from_u64(32, v))
            }
            Some(pos) => {
                let (size, rest) = text.split_at(pos);
                let rest = &rest[1..];
                let width = if size.is_empty() {
                    32
                } else {
                    size.trim()
                        .parse::<u32>()
                        .map_err(|_| ParseBitsError::new(format!("bad size {size:?}")))?
                };
                if width == 0 {
                    return Err(ParseBitsError::new("zero-width literal"));
                }
                let mut chars = rest.chars();
                let mut radix_char = chars
                    .next()
                    .ok_or_else(|| ParseBitsError::new("missing base"))?;
                // Signed designator: 8'sd5 — sign only affects context, the
                // bit pattern parses identically.
                if radix_char == 's' || radix_char == 'S' {
                    radix_char = chars
                        .next()
                        .ok_or_else(|| ParseBitsError::new("missing base"))?;
                }
                let radix = match radix_char.to_ascii_lowercase() {
                    'b' => 2,
                    'o' => 8,
                    'd' => 10,
                    'h' => 16,
                    other => {
                        return Err(ParseBitsError::new(format!("unknown base {other:?}")));
                    }
                };
                Bits::from_str_radix(width, radix, chars.as_str().trim())
            }
        }
    }
}

impl FromStr for Bits {
    type Err = ParseBitsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Bits::parse_literal(s)
    }
}
