//! A tiny deterministic PRNG for tests, fuzz corpora, and benchmark
//! stimulus.
//!
//! The workspace builds without external crates, so this SplitMix64
//! generator stands in for `rand`/`proptest` strategies: fast, seedable,
//! and with a fixed output sequence per seed, which keeps property-test
//! failures reproducible by printing the seed alone.

use crate::Bits;

/// SplitMix64: a small, high-quality 64-bit mixing generator.
///
/// # Examples
///
/// ```
/// # use cascade_bits::Prng;
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// The next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next `u128` (two raw draws).
    #[inline]
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// A uniform value in `[0, bound)`. `bound` of 0 yields 0.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
            // irrelevant for test stimulus.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// A coin flip with probability `num/den` of `true`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A random [`Bits`] value of the given width (uniform over all values).
    pub fn bits(&mut self, width: u32) -> Bits {
        let words: Vec<u64> = (0..width.div_ceil(64)).map(|_| self.next_u64()).collect();
        Bits::from_words(width, &words)
    }

    /// Picks an element of a slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_mixed() {
        let mut p = Prng::new(0);
        let a = p.next_u64();
        let b = p.next_u64();
        assert_ne!(a, b);
        assert_eq!(Prng::new(0).next_u64(), a);
    }

    #[test]
    fn below_respects_bound() {
        let mut p = Prng::new(7);
        for _ in 0..1000 {
            assert!(p.below(13) < 13);
        }
        assert_eq!(p.below(0), 0);
        assert_eq!(p.range(5, 5), 5);
    }

    #[test]
    fn bits_are_canonical() {
        let mut p = Prng::new(3);
        for w in [1u32, 7, 64, 65, 128, 200] {
            let b = p.bits(w);
            assert_eq!(b.width(), w);
            // Canonical: resizing to the same width is identity.
            assert_eq!(b.resize(w), b);
        }
    }
}
