//! Display/Debug formatting for [`Bits`] in the radices `$display` uses.

use crate::Bits;
use std::fmt;

impl Bits {
    /// Formats as unsigned decimal, the `%d` behaviour of `$display`.
    pub fn to_decimal_string(&self) -> String {
        if !self.to_bool() {
            return "0".to_string();
        }
        if self.fits_u64() {
            return self.to_u64().to_string();
        }
        // Repeated division by 10^19 (the largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = Bits::from_u64(self.width(), CHUNK);
        let mut cur = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while cur.to_bool() {
            let q = cur.div(&chunk);
            let r = cur.rem(&chunk);
            parts.push(r.to_u64());
            cur = q;
        }
        let mut s = parts.pop().map(|p| p.to_string()).unwrap_or_default();
        while let Some(p) = parts.pop() {
            s.push_str(&format!("{p:019}"));
        }
        s
    }

    /// Formats as signed decimal (used by `$signed` display contexts).
    pub fn to_signed_decimal_string(&self) -> String {
        if self.msb() {
            format!("-{}", self.neg().to_decimal_string())
        } else {
            self.to_decimal_string()
        }
    }

    /// Formats as lowercase hex without a prefix, the `%h` behaviour.
    pub fn to_hex_string(&self) -> String {
        let digits = self.width().div_ceil(4).max(1) as usize;
        if self.width() <= 64 {
            // Single-word fast path: no per-nibble slice allocations.
            return format!("{:0digits$x}", self.to_u64());
        }
        let mut s = String::with_capacity(digits);
        for d in (0..digits as u32).rev() {
            let nibble = self.slice(d * 4, 4).to_u64();
            s.push(char::from_digit(nibble as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Formats as binary without a prefix, the `%b` behaviour.
    pub fn to_binary_string(&self) -> String {
        let digits = self.width().max(1) as usize;
        if self.width() <= 64 {
            return format!("{:0digits$b}", self.to_u64());
        }
        (0..digits as u32)
            .rev()
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }

    /// Formats as octal without a prefix, the `%o` behaviour.
    pub fn to_octal_string(&self) -> String {
        let digits = self.width().div_ceil(3).max(1);
        let mut s = String::with_capacity(digits as usize);
        for d in (0..digits).rev() {
            let oct = self.slice(d * 3, 3).to_u64();
            s.push(char::from_digit(oct as u32, 8).expect("octal digit < 8"));
        }
        s
    }
}

impl fmt::Display for Bits {
    /// Displays as `<width>'h<hex>`, the canonical Verilog literal form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{}", self.width(), self.to_hex_string())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits({self})")
    }
}

impl fmt::LowerHex for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex_string())
    }
}

impl fmt::Binary for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0b", &self.to_binary_string())
    }
}

impl fmt::Octal for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0o", &self.to_octal_string())
    }
}
