//! Property-based tests for `cascade-bits` against `u128` reference
//! semantics and algebraic laws.

use cascade_bits::Bits;
use proptest::prelude::*;

fn bits_and_val(width: u32) -> impl Strategy<Value = (Bits, u128)> {
    any::<u128>().prop_map(move |v| {
        let v = if width >= 128 { v } else { v & ((1u128 << width) - 1) };
        (Bits::from_words(width, &[v as u64, (v >> 64) as u64]), v)
    })
}

fn arb_width() -> impl Strategy<Value = u32> {
    prop_oneof![1u32..=64, 65u32..=128]
}

proptest! {
    #[test]
    fn add_matches_u128((w, a, b) in arb_width().prop_flat_map(|w| {
        (Just(w), bits_and_val(w), bits_and_val(w))
    }).prop_map(|(w, a, b)| (w, a, b))) {
        let ((ba, va), (bb, vb)) = (a, b);
        let mask = if w >= 128 { u128::MAX } else { (1u128 << w) - 1 };
        let expect = va.wrapping_add(vb) & mask;
        let got = ba.add(&bb);
        prop_assert_eq!(got.slice(0, 64).to_u64() as u128
            | ((got.slice(64, 64).to_u64() as u128) << 64), expect);
    }

    #[test]
    fn sub_is_add_of_neg((w, a, b) in arb_width().prop_flat_map(|w| {
        (Just(w), bits_and_val(w), bits_and_val(w))
    })) {
        let ((ba, _), (bb, _)) = (a, b);
        prop_assert_eq!(ba.sub(&bb), ba.add(&bb.neg()));
        let _ = w;
    }

    #[test]
    fn mul_matches_u128((a, b) in (bits_and_val(64), bits_and_val(64))) {
        let ((ba, va), (bb, vb)) = (a, b);
        let expect = (va as u64).wrapping_mul(vb as u64);
        prop_assert_eq!(ba.mul(&bb).to_u64(), expect);
    }

    #[test]
    fn divmod_identity((a, b) in (bits_and_val(96), bits_and_val(96))) {
        let ((ba, _), (bb, vb)) = (a, b);
        prop_assume!(vb != 0);
        let q = ba.div(&bb);
        let r = ba.rem(&bb);
        prop_assert!(r.cmp_unsigned(&bb) == std::cmp::Ordering::Less);
        prop_assert_eq!(q.mul(&bb).add(&r).resize(96), ba);
    }

    #[test]
    fn shift_roundtrip((a, s) in (bits_and_val(100), 0u32..100)) {
        let (ba, _) = a;
        // (a << s) >> s clears the high s bits only.
        let round = ba.shl(s).shr(s);
        prop_assert_eq!(round, ba.slice(0, 100 - s).resize(100));
    }

    #[test]
    fn not_involutive(a in bits_and_val(77)) {
        let (ba, _) = a;
        prop_assert_eq!(ba.not().not(), ba.clone());
    }

    #[test]
    fn de_morgan((a, b) in (bits_and_val(90), bits_and_val(90))) {
        let ((ba, _), (bb, _)) = (a, b);
        prop_assert_eq!(ba.and(&bb).not(), ba.not().or(&bb.not()));
    }

    #[test]
    fn concat_slice_roundtrip((a, b) in (bits_and_val(37), bits_and_val(21))) {
        let ((ba, _), (bb, _)) = (a, b);
        let c = ba.concat(&bb);
        prop_assert_eq!(c.width(), 58);
        prop_assert_eq!(c.slice(0, 21), bb);
        prop_assert_eq!(c.slice(21, 37), ba);
    }

    #[test]
    fn decimal_string_roundtrip(a in bits_and_val(128)) {
        let (ba, _) = a;
        let s = ba.to_decimal_string();
        let back = Bits::from_str_radix(128, 10, &s).unwrap();
        prop_assert_eq!(back, ba);
    }

    #[test]
    fn hex_string_roundtrip(a in bits_and_val(71)) {
        let (ba, _) = a;
        let back = Bits::from_str_radix(71, 16, &ba.to_hex_string()).unwrap();
        prop_assert_eq!(back, ba);
    }

    #[test]
    fn cmp_signed_matches_i64(a in any::<u64>(), b in any::<u64>()) {
        let ba = Bits::from_u64(64, a);
        let bb = Bits::from_u64(64, b);
        prop_assert_eq!(ba.cmp_signed(&bb), (a as i64).cmp(&(b as i64)));
    }

    #[test]
    fn reduce_xor_is_parity(a in bits_and_val(93)) {
        let (ba, _) = a;
        prop_assert_eq!(ba.reduce_xor(), ba.count_ones() % 2 == 1);
    }

    #[test]
    fn resize_signed_preserves_value(a in any::<u64>(), w in 1u32..63) {
        let ba = Bits::from_u64(w, a);
        let wide = ba.resize_signed(64);
        prop_assert_eq!(wide.to_i64(), ba.to_i64());
    }
}
