//! Property-based tests for `cascade-bits` against `u128` reference
//! semantics and algebraic laws.
//!
//! Randomized with the in-tree deterministic [`Prng`] (the container has no
//! registry access, so `proptest` is unavailable); every case prints its
//! seed on failure for replay.

use cascade_bits::{Bits, Prng};

const CASES: u64 = 256;

fn bits_and_val(rng: &mut Prng, width: u32) -> (Bits, u128) {
    let v = rng.next_u128();
    let v = if width >= 128 {
        v
    } else {
        v & ((1u128 << width) - 1)
    };
    (Bits::from_words(width, &[v as u64, (v >> 64) as u64]), v)
}

/// A width drawn from both the inline (≤64) and boxed (>64) representations.
fn arb_width(rng: &mut Prng) -> u32 {
    if rng.chance(1, 2) {
        rng.range(1, 64) as u32
    } else {
        rng.range(65, 128) as u32
    }
}

#[test]
fn add_matches_u128() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let w = arb_width(&mut rng);
        let (ba, va) = bits_and_val(&mut rng, w);
        let (bb, vb) = bits_and_val(&mut rng, w);
        let mask = if w >= 128 {
            u128::MAX
        } else {
            (1u128 << w) - 1
        };
        let expect = va.wrapping_add(vb) & mask;
        let got = ba.add(&bb);
        let got128 =
            got.slice(0, 64).to_u64() as u128 | ((got.slice(64, 64).to_u64() as u128) << 64);
        assert_eq!(got128, expect, "seed {seed} width {w}");
    }
}

#[test]
fn sub_is_add_of_neg() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let w = arb_width(&mut rng);
        let (ba, _) = bits_and_val(&mut rng, w);
        let (bb, _) = bits_and_val(&mut rng, w);
        assert_eq!(ba.sub(&bb), ba.add(&bb.neg()), "seed {seed} width {w}");
    }
}

#[test]
fn mul_matches_u128() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, va) = bits_and_val(&mut rng, 64);
        let (bb, vb) = bits_and_val(&mut rng, 64);
        let expect = (va as u64).wrapping_mul(vb as u64);
        assert_eq!(ba.mul(&bb).to_u64(), expect, "seed {seed}");
    }
}

#[test]
fn divmod_identity() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 96);
        let (bb, vb) = bits_and_val(&mut rng, 96);
        if vb == 0 {
            continue;
        }
        let q = ba.div(&bb);
        let r = ba.rem(&bb);
        assert!(
            r.cmp_unsigned(&bb) == std::cmp::Ordering::Less,
            "seed {seed}"
        );
        assert_eq!(q.mul(&bb).add(&r).resize(96), ba, "seed {seed}");
    }
}

#[test]
fn shift_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 100);
        let s = rng.below(100) as u32;
        // (a << s) >> s clears the high s bits only.
        let round = ba.shl(s).shr(s);
        assert_eq!(
            round,
            ba.slice(0, 100 - s).resize(100),
            "seed {seed} shift {s}"
        );
    }
}

#[test]
fn not_involutive() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 77);
        assert_eq!(ba.not().not(), ba, "seed {seed}");
    }
}

#[test]
fn de_morgan() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 90);
        let (bb, _) = bits_and_val(&mut rng, 90);
        assert_eq!(ba.and(&bb).not(), ba.not().or(&bb.not()), "seed {seed}");
    }
}

#[test]
fn concat_slice_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 37);
        let (bb, _) = bits_and_val(&mut rng, 21);
        let c = ba.concat(&bb);
        assert_eq!(c.width(), 58);
        assert_eq!(c.slice(0, 21), bb, "seed {seed}");
        assert_eq!(c.slice(21, 37), ba, "seed {seed}");
    }
}

#[test]
fn decimal_string_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 128);
        let s = ba.to_decimal_string();
        let back = Bits::from_str_radix(128, 10, &s).unwrap();
        assert_eq!(back, ba, "seed {seed}");
    }
}

#[test]
fn hex_string_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 71);
        let back = Bits::from_str_radix(71, 16, &ba.to_hex_string()).unwrap();
        assert_eq!(back, ba, "seed {seed}");
    }
}

#[test]
fn cmp_signed_matches_i64() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let ba = Bits::from_u64(64, a);
        let bb = Bits::from_u64(64, b);
        assert_eq!(
            ba.cmp_signed(&bb),
            (a as i64).cmp(&(b as i64)),
            "seed {seed}"
        );
    }
}

#[test]
fn reduce_xor_is_parity() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let (ba, _) = bits_and_val(&mut rng, 93);
        assert_eq!(ba.reduce_xor(), ba.count_ones() % 2 == 1, "seed {seed}");
    }
}

#[test]
fn resize_signed_preserves_value() {
    for seed in 0..CASES {
        let mut rng = Prng::new(seed);
        let w = rng.range(1, 62) as u32;
        let ba = Bits::from_u64(w, rng.next_u64());
        let wide = ba.resize_signed(64);
        assert_eq!(wide.to_i64(), ba.to_i64(), "seed {seed} width {w}");
    }
}
